"""Property and integration tests for the observation-driven autotuner.

The planners (:func:`repro.parallel.autotune.plan_generation`,
:func:`~repro.parallel.autotune.plan_swap`) are pure functions of
``(config, snapshot)``, so they are property-tested directly: plans are
deterministic, never propose zero/negative geometry, keep shards a power
of two, and respect ``ParallelConfig.processes`` as a worker ceiling.
The cost model they consume gets the same treatment.  The integration
tests then assert the end-to-end contract: ``autotune=True`` changes
execution only — outputs stay bitwise-identical for every entry point.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import Metrics
from repro.parallel.autotune import (
    TunePlan,
    TuneSnapshot,
    plan_generation,
    plan_swap,
)
from repro.parallel.cost_model import PhaseCost
from repro.parallel.runtime import ParallelConfig


def snapshot_strategy():
    return st.builds(
        TuneSnapshot,
        edges=st.integers(0, 10**8),
        host_workers=st.integers(1, 128),
        seconds=st.floats(0.0, 100.0, allow_nan=False),
        table_attempts=st.integers(0, 10**9),
        table_failures=st.integers(0, 10**9),
        workers=st.integers(0, 64),
        shards=st.integers(0, 1024),
        batch_size=st.integers(0, 10**7),
    )


def config_strategy():
    return st.builds(
        ParallelConfig,
        threads=st.integers(1, 64),
        backend=st.just("process"),
        seed=st.integers(0, 10),
        shards=st.integers(0, 256),
        processes=st.integers(0, 32),
        batch_size=st.integers(0, 10**6),
    )


class TestPlanProperties:
    @settings(max_examples=200, deadline=None)
    @given(config=config_strategy(), snapshot=snapshot_strategy())
    def test_swap_plan_deterministic_and_positive(self, config, snapshot):
        plan = plan_swap(config, snapshot)
        assert plan == plan_swap(config, snapshot)
        # TunePlan.__post_init__ enforces these, but assert the contract
        # here so it cannot be silently weakened
        assert plan.processes >= 1
        assert plan.shards >= 1 and plan.shards & (plan.shards - 1) == 0
        assert plan.batch_size >= 1

    @settings(max_examples=200, deadline=None)
    @given(config=config_strategy(), snapshot=snapshot_strategy())
    def test_swap_plan_respects_process_ceiling(self, config, snapshot):
        plan = plan_swap(config, snapshot)
        ceiling = config.processes or max(1, snapshot.host_workers)
        assert plan.processes <= ceiling

    @settings(max_examples=200, deadline=None)
    @given(
        config=config_strategy(),
        expected_edges=st.integers(0, 10**8),
        host_workers=st.integers(1, 128),
    )
    def test_generation_plan_deterministic_and_bounded(
        self, config, expected_edges, host_workers
    ):
        plan = plan_generation(
            config, expected_edges=expected_edges, host_workers=host_workers
        )
        again = plan_generation(
            config, expected_edges=expected_edges, host_workers=host_workers
        )
        assert plan == again
        assert plan.processes >= 1
        assert plan.processes <= (config.processes or max(1, host_workers))
        assert plan.shards >= 1 and plan.shards & (plan.shards - 1) == 0
        assert plan.batch_size >= 1

    @settings(max_examples=100, deadline=None)
    @given(snapshot=snapshot_strategy())
    def test_pinned_knobs_pass_through(self, snapshot):
        config = ParallelConfig(
            threads=4, backend="process", processes=3, batch_size=777
        )
        plan = plan_swap(config, snapshot)
        assert plan.processes <= 3
        assert plan.batch_size == 777

    def test_invalid_plans_fail_loudly(self):
        with pytest.raises(ValueError):
            TunePlan(processes=0, shards=8, batch_size=1)
        with pytest.raises(ValueError):
            TunePlan(processes=1, shards=12, batch_size=1)  # not a pow2
        with pytest.raises(ValueError):
            TunePlan(processes=1, shards=8, batch_size=0)

    def test_snapshot_from_metrics_reads_table_counters(self):
        metrics = Metrics()
        metrics.inc("swap.table.attempts", 120)
        metrics.inc("swap.table.failures", 7)
        snap = TuneSnapshot.from_metrics(
            metrics, edges=50, host_workers=2, seconds=0.5
        )
        assert snap.table_attempts == 120
        assert snap.table_failures == 7
        assert snap.edges == 50

    def test_contended_snapshot_spreads_shards(self):
        config = ParallelConfig(threads=2, backend="process")
        calm = TuneSnapshot(
            edges=10**6, host_workers=4, seconds=1.0,
            table_attempts=1000, table_failures=0,
        )
        hot = TuneSnapshot(
            edges=10**6, host_workers=4, seconds=1.0,
            table_attempts=1000, table_failures=500,
        )
        assert plan_swap(config, hot).shards == 2 * plan_swap(config, calm).shards


class TestCostModelProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        work=st.floats(1.0, 10**9, allow_nan=False),
        depth_frac=st.floats(0.0, 1.0, allow_nan=False),
        seconds=st.one_of(st.just(0.0), st.floats(1e-9, 1000.0, allow_nan=False)),
        threads=st.integers(1, 1024),
    )
    def test_simulated_seconds_positive_and_monotone_in_threads(
        self, work, depth_frac, seconds, threads
    ):
        """More simulated threads never slows the modeled phase down."""
        phase = PhaseCost("p", work=work, depth=work * depth_frac, seconds=seconds)
        t = phase.simulated_seconds(threads)
        assert t > 0
        assert phase.simulated_seconds(2 * threads) <= t * (1 + 1e-9)

    @settings(max_examples=100, deadline=None)
    @given(
        work=st.floats(1.0, 10**6, allow_nan=False),
        threads=st.integers(1, 64),
    )
    def test_brents_bound_never_beats_span(self, work, threads):
        """T_p >= max(W/p, D) * c — the bound's defining inequality."""
        phase = PhaseCost("p", work=work, depth=min(work, 8.0), seconds=1.0)
        cost_per_op = 1.0 / work
        t = phase.simulated_seconds(threads)
        assert t >= max(work / threads, phase.depth) * cost_per_op * (1 - 1e-9)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            PhaseCost("p", work=-1.0, depth=0.0)
        with pytest.raises(ValueError):
            PhaseCost("p", work=1.0, depth=2.0)


class TestAutotuneBitwise:
    """autotune=True must never change what a run produces."""

    def _graph(self, seed=0, n=60, m=150):
        rng = np.random.default_rng(seed)
        u = rng.integers(0, n, 3 * m)
        v = rng.integers(0, n, 3 * m)
        from repro.graph.edgelist import EdgeList

        keep = u != v
        g = EdgeList(u[keep], v[keep], n).simplify()
        return EdgeList(g.u[:m], g.v[:m], n)

    def test_process_swap_identical_with_autotune(self):
        from repro.core.swap import SwapStats, swap_edges

        graph = self._graph()
        outs, stats = {}, {}
        for auto in (False, True):
            stats[auto] = SwapStats()
            outs[auto] = swap_edges(
                graph, 4,
                ParallelConfig(
                    threads=2, backend="process", seed=11, autotune=auto
                ),
                stats=stats[auto],
            )
        np.testing.assert_array_equal(outs[True].u, outs[False].u)
        np.testing.assert_array_equal(outs[True].v, outs[False].v)
        assert stats[True] == stats[False]

    def test_fused_generate_identical_with_autotune(self):
        from repro.core.generate import generate_graph
        from repro.datasets.synthetic import deterministic_powerlaw

        dist = deterministic_powerlaw(n=400, d_avg=4.0, d_max=25, n_classes=12)
        outs, reports = {}, {}
        for auto in (False, True):
            outs[auto], reports[auto] = generate_graph(
                dist, swap_iterations=2,
                config=ParallelConfig(
                    threads=4, backend="process", seed=7, autotune=auto
                ),
            )
        np.testing.assert_array_equal(outs[True].u, outs[False].u)
        np.testing.assert_array_equal(outs[True].v, outs[False].v)
        assert reports[True].swap_stats == reports[False].swap_stats
        assert reports[True].fused and reports[False].fused

    def test_pinned_batch_size_bounds_exchange(self):
        """A tiny pinned batch_size still yields identical output (the
        sub-batched exchange protocol is verdict-preserving)."""
        from repro.core.swap import swap_edges

        graph = self._graph(seed=3)
        base = swap_edges(
            graph, 3, ParallelConfig(threads=2, backend="process", seed=5)
        )
        small = swap_edges(
            graph, 3,
            ParallelConfig(
                threads=2, backend="process", seed=5, batch_size=17
            ),
        )
        np.testing.assert_array_equal(small.u, base.u)
        np.testing.assert_array_equal(small.v, base.v)
