"""Tests for the reservation-based parallel permutation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel.permutation import (
    PermutationStats,
    fisher_yates_permutation,
    knuth_targets,
    parallel_permutation,
    sort_permutation,
)
from repro.parallel.runtime import ParallelConfig


class TestKnuthTargets:
    def test_range(self):
        h = knuth_targets(100, np.random.default_rng(0))
        i = np.arange(100)
        assert (h >= i).all() and (h < 100).all()

    def test_empty(self):
        assert knuth_targets(0, np.random.default_rng(0)).shape == (0,)

    def test_reproducible(self):
        np.testing.assert_array_equal(knuth_targets(50, 7), knuth_targets(50, 7))


class TestSequentialEquivalence:
    """Shun et al.: same H array => identical output to Fisher–Yates."""

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 10, 100, 1023])
    def test_identical_to_fisher_yates(self, n):
        rng = np.random.default_rng(n)
        h = knuth_targets(n, rng)
        arr = np.arange(n)
        par = parallel_permutation(arr, ParallelConfig(seed=1), targets=h)
        seq = fisher_yates_permutation(arr, targets=h)
        np.testing.assert_array_equal(par, seq)

    @given(st.integers(0, 300), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_property_equivalence(self, n, seed):
        h = knuth_targets(n, seed)
        arr = np.arange(n)
        np.testing.assert_array_equal(
            parallel_permutation(arr, ParallelConfig(seed=0), targets=h),
            fisher_yates_permutation(arr, targets=h),
        )

    def test_serial_backend_delegates(self):
        h = knuth_targets(20, 3)
        arr = np.arange(20)
        out = parallel_permutation(arr, ParallelConfig(backend="serial"), targets=h)
        np.testing.assert_array_equal(out, fisher_yates_permutation(arr, targets=h))


class TestPermutationProperties:
    def test_is_permutation(self):
        arr = np.arange(500)
        out = parallel_permutation(arr, ParallelConfig(seed=4))
        np.testing.assert_array_equal(np.sort(out), arr)

    def test_input_not_mutated(self):
        arr = np.arange(50)
        parallel_permutation(arr, ParallelConfig(seed=4))
        np.testing.assert_array_equal(arr, np.arange(50))

    def test_reproducible_for_seed(self):
        arr = np.arange(100)
        a = parallel_permutation(arr, ParallelConfig(seed=5))
        b = parallel_permutation(arr, ParallelConfig(seed=5))
        np.testing.assert_array_equal(a, b)

    def test_stats_rounds_logarithmic(self):
        stats = PermutationStats()
        n = 4096
        parallel_permutation(np.arange(n), ParallelConfig(seed=1), stats=stats)
        assert stats.n == n
        # reservation rounds are O(log n) w.h.p.; allow generous slack
        assert 1 <= stats.rounds <= 8 * int(np.log2(n))
        assert stats.attempts >= n

    def test_bad_targets_length(self):
        with pytest.raises(ValueError):
            parallel_permutation(np.arange(5), targets=np.asarray([0, 1]))

    def test_bad_targets_range(self):
        with pytest.raises(ValueError):
            parallel_permutation(np.arange(3), targets=np.asarray([0, 1, 5]))

    def test_uniformity_chi_square(self):
        """Each element lands in each slot ~uniformly (3-element case)."""
        counts = {}
        for seed in range(600):
            out = tuple(parallel_permutation(np.arange(3), ParallelConfig(seed=seed)))
            counts[out] = counts.get(out, 0) + 1
        assert len(counts) == 6
        expected = 600 / 6
        chi2 = sum((c - expected) ** 2 / expected for c in counts.values())
        # dof=5; 99.9% critical value ~20.5
        assert chi2 < 20.5


class TestSortPermutation:
    def test_is_permutation(self):
        out = sort_permutation(np.arange(64), np.random.default_rng(0))
        np.testing.assert_array_equal(np.sort(out), np.arange(64))

    def test_reproducible(self):
        np.testing.assert_array_equal(
            sort_permutation(np.arange(32), 9), sort_permutation(np.arange(32), 9)
        )


class TestFisherYates:
    def test_without_targets_uses_rng(self):
        out = fisher_yates_permutation(np.arange(16), 3)
        np.testing.assert_array_equal(np.sort(out), np.arange(16))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fisher_yates_permutation(np.arange(4), targets=np.asarray([0]))
