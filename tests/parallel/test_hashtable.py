"""Tests for the concurrent edge hash table."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel.hashtable import (
    EMPTY_KEY,
    ConcurrentEdgeHashTable,
    pack_edges,
    unpack_edges,
)


class TestPackEdges:
    def test_canonical_orientation(self):
        a = pack_edges(np.asarray([1, 5]), np.asarray([5, 1]))
        assert a[0] == a[1]

    def test_roundtrip_sorted(self):
        u = np.asarray([9, 0, 3])
        v = np.asarray([2, 7, 3])
        uu, vv = unpack_edges(pack_edges(u, v))
        np.testing.assert_array_equal(uu, np.minimum(u, v))
        np.testing.assert_array_equal(vv, np.maximum(u, v))

    def test_distinct_pairs_distinct_keys(self):
        u = np.asarray([0, 0, 1, 2])
        v = np.asarray([1, 2, 2, 3])
        assert len(np.unique(pack_edges(u, v))) == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pack_edges(np.asarray([-1]), np.asarray([0]))

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            pack_edges(np.asarray([2**32]), np.asarray([0]))

    def test_32bit_boundary_ok(self):
        k = pack_edges(np.asarray([2**32 - 1]), np.asarray([0]))
        uu, vv = unpack_edges(k)
        assert uu[0] == 0 and vv[0] == 2**32 - 1

    @given(st.lists(st.tuples(st.integers(0, 2**20), st.integers(0, 2**20)), max_size=50))
    def test_property_roundtrip(self, pairs):
        if not pairs:
            return
        u = np.asarray([p[0] for p in pairs])
        v = np.asarray([p[1] for p in pairs])
        uu, vv = unpack_edges(pack_edges(u, v))
        np.testing.assert_array_equal(uu, np.minimum(u, v))
        np.testing.assert_array_equal(vv, np.maximum(u, v))


class TestTestAndSet:
    def test_fresh_keys_absent(self):
        t = ConcurrentEdgeHashTable(10)
        present = t.test_and_set(np.asarray([10, 20, 30], dtype=np.int64))
        assert not present.any()
        assert t.size == 3

    def test_reinsert_present(self):
        t = ConcurrentEdgeHashTable(10)
        t.test_and_set(np.asarray([10, 20], dtype=np.int64))
        present = t.test_and_set(np.asarray([20, 10, 40], dtype=np.int64))
        np.testing.assert_array_equal(present, [True, True, False])

    def test_duplicates_within_batch(self):
        t = ConcurrentEdgeHashTable(10)
        present = t.test_and_set(np.asarray([7, 7, 7], dtype=np.int64))
        # exactly one insertion wins; the others observe the key
        assert present.sum() == 2
        assert t.size == 1

    def test_clear(self):
        t = ConcurrentEdgeHashTable(10)
        t.test_and_set(np.asarray([1, 2, 3], dtype=np.int64))
        t.clear()
        assert t.size == 0
        assert not t.test_and_set(np.asarray([1], dtype=np.int64))[0]

    def test_negative_key_rejected(self):
        t = ConcurrentEdgeHashTable(4)
        with pytest.raises(ValueError):
            t.test_and_set(np.asarray([-3], dtype=np.int64))

    def test_empty_batch(self):
        t = ConcurrentEdgeHashTable(4)
        assert t.test_and_set(np.empty(0, dtype=np.int64)).shape == (0,)

    def test_matches_serial_reference(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 500, size=2000).astype(np.int64)
        t_vec = ConcurrentEdgeHashTable(600)
        t_ser = ConcurrentEdgeHashTable(600)
        # process in chunks; cross-chunk membership must agree exactly
        for lo in range(0, len(keys), 100):
            chunk = keys[lo : lo + 100]
            ser = t_ser.test_and_set_serial(chunk)
            vec = t_vec.test_and_set(chunk)
            # within-chunk duplicate ordering may differ between engines,
            # but the per-key counts of "absent" verdicts must match
            for k in np.unique(chunk):
                mask = chunk == k
                assert ser[mask].sum() == vec[mask].sum()
        assert t_vec.size == t_ser.size == len(np.unique(keys))

    @pytest.mark.parametrize("probing", ["linear", "quadratic"])
    def test_high_load(self, probing):
        keys = np.arange(1000, dtype=np.int64) * 7919
        t = ConcurrentEdgeHashTable(1000, probing=probing)
        assert not t.test_and_set(keys).any()
        assert t.test_and_set(keys).all()
        assert t.size == 1000

    def test_invalid_probing(self):
        with pytest.raises(ValueError):
            ConcurrentEdgeHashTable(4, probing="cuckoo")

    def test_table_sized_power_of_two(self):
        t = ConcurrentEdgeHashTable(100)
        assert t.n_slots & (t.n_slots - 1) == 0
        assert t.n_slots >= 200

    def test_contention_stats_counted(self):
        t = ConcurrentEdgeHashTable(100)
        t.test_and_set(np.arange(100, dtype=np.int64))
        assert t.stats.attempts >= 100

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_property_set_semantics(self, values):
        keys = np.asarray(values, dtype=np.int64)
        t = ConcurrentEdgeHashTable(len(keys))
        t.test_and_set(keys)
        assert t.size == len(set(values))
        assert t.test_and_set(keys).all()
        assert t.contains(keys).all()


class TestContains:
    def test_absent(self):
        t = ConcurrentEdgeHashTable(8)
        t.test_and_set(np.asarray([5], dtype=np.int64))
        found = t.contains(np.asarray([5, 6], dtype=np.int64))
        np.testing.assert_array_equal(found, [True, False])

    def test_does_not_insert(self):
        t = ConcurrentEdgeHashTable(8)
        t.contains(np.asarray([5], dtype=np.int64))
        assert t.size == 0

    def test_empty_query(self):
        t = ConcurrentEdgeHashTable(8)
        assert t.contains(np.empty(0, dtype=np.int64)).shape == (0,)


class TestShardedTable:
    """The shared-memory sharded table must match the flat table's verdicts."""

    def _table(self, cap=1024, **kw):
        from repro.parallel.hashtable import ShardedEdgeHashTable

        return ShardedEdgeHashTable(cap, **kw)

    def test_verdicts_match_flat_table(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 400, 1500).astype(np.int64)
        flat = ConcurrentEdgeHashTable(2048)
        with self._table(2048, n_shards=16) as sharded:
            np.testing.assert_array_equal(
                sharded.test_and_set(keys), flat.test_and_set(keys)
            )
            assert sharded.size == flat.size

    @pytest.mark.parametrize("probing", ["linear", "quadratic"])
    def test_probing_variants(self, probing):
        keys = np.arange(200, dtype=np.int64)
        with self._table(256, probing=probing) as t:
            assert not t.test_and_set(keys).any()
            assert t.test_and_set(keys).all()

    def test_shard_of_partitions_keys(self):
        with self._table(64, n_shards=8) as t:
            shards = t.shard_of(np.arange(1000, dtype=np.int64))
            assert shards.min() >= 0 and shards.max() < t.n_shards
            # splitmix spreads keys over every shard
            assert len(np.unique(shards)) == t.n_shards

    def test_per_shard_stats_recorded(self):
        keys = np.arange(500, dtype=np.int64)
        with self._table(1024, n_shards=8) as t:
            t.test_and_set(keys)
            stats = t.per_shard_stats
            assert stats["inserted"].sum() == 500
            assert (stats["attempts"] >= stats["inserted"]).all()
            agg = t.stats
            assert agg.attempts == stats["attempts"].sum()

    def test_clear_keeps_counters(self):
        keys = np.arange(100, dtype=np.int64)
        with self._table(256) as t:
            t.test_and_set(keys)
            before = t.stats.attempts
            t.clear()
            assert t.size == 0
            assert t.stats.attempts == before
            assert not t.test_and_set(keys).any()

    def test_attach_shares_state(self):
        from repro.parallel.hashtable import ShardedEdgeHashTable

        keys = np.arange(64, dtype=np.int64)
        with self._table(128) as t:
            t.test_and_set(keys)
            other = ShardedEdgeHashTable.attach(t.descriptor())
            assert other.test_and_set(keys).all()
            assert other.contains(keys).all()
            other.close()

    def test_contains_does_not_insert(self):
        with self._table(64) as t:
            t.contains(np.asarray([3, 4], dtype=np.int64))
            assert t.size == 0

    def test_duplicate_keys_first_occurrence_wins(self):
        keys = np.asarray([7, 7, 7, 9], dtype=np.int64)
        with self._table(64) as t:
            got = t.test_and_set(keys)
            np.testing.assert_array_equal(got, [False, True, True, False])

    def test_negative_keys_rejected(self):
        with self._table(64) as t:
            with pytest.raises(ValueError):
                t.test_and_set(np.asarray([-2], dtype=np.int64))

    def test_shard_count_rounded_to_pow2(self):
        with self._table(64, n_shards=5) as t:
            assert t.n_shards == 8

    @given(st.lists(st.integers(0, 2**40), max_size=120))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_python_set(self, values):
        keys = np.asarray(values, dtype=np.int64)
        with self._table(max(len(values), 4)) as t:
            got = t.test_and_set(keys)
            seen = set()
            for i, k in enumerate(values):
                assert got[i] == (k in seen)
                seen.add(k)
            assert t.size == len(seen)
