"""Tests for ParallelConfig and static chunk partitioning."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.parallel.runtime import BACKENDS, ParallelConfig, chunk_bounds, chunk_views


class TestParallelConfig:
    def test_defaults(self):
        cfg = ParallelConfig()
        assert cfg.threads == 16
        assert cfg.backend == "vectorized"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_valid_backends(self, backend):
        assert ParallelConfig(backend=backend).backend == backend

    def test_invalid_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelConfig(backend="gpu")

    def test_invalid_threads(self):
        with pytest.raises(ValueError, match="threads"):
            ParallelConfig(threads=0)

    def test_generator_reproducible(self):
        cfg = ParallelConfig(seed=5)
        np.testing.assert_array_equal(cfg.generator().random(4), cfg.generator().random(4))

    def test_thread_generators_count(self):
        assert len(ParallelConfig(threads=3, seed=1).thread_generators()) == 3

    def test_with_seed_copies(self):
        cfg = ParallelConfig(threads=2, seed=1)
        cfg2 = cfg.with_seed(9)
        assert cfg2.seed == 9 and cfg2.threads == 2 and cfg.seed == 1

    def test_with_threads_copies(self):
        cfg = ParallelConfig(threads=2, seed=1)
        cfg2 = cfg.with_threads(8)
        assert cfg2.threads == 8 and cfg2.seed == 1

    def test_frozen(self):
        with pytest.raises(Exception):
            ParallelConfig().threads = 4


class TestChunkBounds:
    def test_even_split(self):
        np.testing.assert_array_equal(chunk_bounds(8, 4), [0, 2, 4, 6, 8])

    def test_uneven_split_front_loaded(self):
        np.testing.assert_array_equal(chunk_bounds(10, 4), [0, 3, 6, 8, 10])

    def test_more_chunks_than_items(self):
        b = chunk_bounds(2, 5)
        assert b[0] == 0 and b[-1] == 2 and len(b) == 6

    def test_empty(self):
        np.testing.assert_array_equal(chunk_bounds(0, 3), [0, 0, 0, 0])

    def test_negative_n(self):
        with pytest.raises(ValueError):
            chunk_bounds(-1, 2)

    def test_zero_chunks(self):
        with pytest.raises(ValueError):
            chunk_bounds(5, 0)

    @given(st.integers(0, 10_000), st.integers(1, 64))
    def test_partition_properties(self, n, chunks):
        b = chunk_bounds(n, chunks)
        assert len(b) == chunks + 1
        assert b[0] == 0 and b[-1] == n
        sizes = np.diff(b)
        assert (sizes >= 0).all()
        # static schedule balance: sizes differ by at most one
        assert sizes.max() - sizes.min() <= 1


class TestChunkViews:
    def test_views_cover_array(self):
        arr = np.arange(11)
        parts = list(chunk_views(arr, 3))
        np.testing.assert_array_equal(np.concatenate(parts), arr)

    def test_views_are_views(self):
        arr = np.arange(6)
        first = next(chunk_views(arr, 2))
        first[0] = 99
        assert arr[0] == 99
