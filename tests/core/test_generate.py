"""Tests for the end-to-end pipeline (Algorithm IV.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.generate import generate_graph
from repro.core.probabilities import generate_probabilities
from repro.datasets.synthetic import sampled_powerlaw
from repro.graph.degree import DegreeDistribution
from repro.graph.stats import percent_error
from repro.parallel.runtime import ParallelConfig


class TestEndToEnd:
    def test_output_simple(self, skewed_dist, cfg):
        g, _ = generate_graph(skewed_dist, swap_iterations=3, config=cfg)
        assert g.is_simple()
        assert g.n == skewed_dist.n

    def test_matches_edge_count_in_expectation(self, skewed_dist):
        sizes = [
            generate_graph(skewed_dist, swap_iterations=0, config=ParallelConfig(seed=s))[0].m
            for s in range(30)
        ]
        assert abs(percent_error(np.mean(sizes), skewed_dist.m)) < 8.0

    def test_zero_iterations_skips_swap(self, small_dist, cfg):
        _, report = generate_graph(small_dist, swap_iterations=0, config=cfg)
        assert report.swap_stats.iterations == 0

    def test_report_phases(self, small_dist, cfg):
        _, report = generate_graph(small_dist, swap_iterations=2, config=cfg)
        assert set(report.phase_seconds) == {"probabilities", "edge_generation", "swap"}
        # the true wall measurement covers the phases plus the (small)
        # inter-phase bookkeeping
        assert report.wall_seconds is not None
        assert report.total_seconds == report.wall_seconds
        assert report.total_seconds >= sum(report.phase_seconds.values()) - 1e-9
        # fresh run: nothing banked, cumulative == this call
        assert report.prior_phase_seconds == {}
        assert report.cumulative_seconds == pytest.approx(report.total_seconds)
        assert report.cumulative_phase_seconds == pytest.approx(report.phase_seconds)
        assert report.edges_generated > 0
        assert report.swap_stats.iterations == 2

    def test_cost_model_has_all_phases(self, small_dist, cfg):
        _, report = generate_graph(small_dist, swap_iterations=1, config=cfg)
        names = set(report.cost.phase_names())
        assert {"probabilities", "edge_generation", "permutation", "swap"} <= names

    def test_precomputed_probabilities_reused(self, small_dist, cfg):
        prob = generate_probabilities(small_dist)
        _, report = generate_graph(
            small_dist, swap_iterations=0, config=cfg, probabilities=prob
        )
        assert report.probabilities is prob

    def test_probability_kwargs_forwarded(self, small_dist, cfg):
        _, report = generate_graph(
            small_dist,
            swap_iterations=0,
            config=cfg,
            probability_kwargs={"passes": 2},
        )
        assert report.probabilities is not None

    def test_callback_forwarded(self, small_dist, cfg):
        seen = []
        generate_graph(
            small_dist, swap_iterations=3, config=cfg,
            callback=lambda it, g: seen.append(it),
        )
        assert seen == [0, 1, 2]

    def test_reproducible(self, skewed_dist):
        a, _ = generate_graph(skewed_dist, swap_iterations=2, config=ParallelConfig(seed=5))
        b, _ = generate_graph(skewed_dist, swap_iterations=2, config=ParallelConfig(seed=5))
        assert a.same_graph(b)

    def test_different_seeds_differ(self, skewed_dist):
        a, _ = generate_graph(skewed_dist, swap_iterations=1, config=ParallelConfig(seed=1))
        b, _ = generate_graph(skewed_dist, swap_iterations=1, config=ParallelConfig(seed=2))
        assert not a.same_graph(b)

    @given(st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_property_random_distributions(self, seed):
        dist = sampled_powerlaw(80, 2.3, 1, 20, seed=seed)
        g, _ = generate_graph(dist, swap_iterations=2, config=ParallelConfig(seed=seed))
        assert g.is_simple()
        assert g.n == dist.n

    def test_degree_distribution_shape_preserved(self, skewed_dist):
        """Mean realized degree per class tracks the target."""
        from repro.graph.stats import vertex_classes

        cls = vertex_classes(skewed_dist)
        acc = np.zeros(skewed_dist.n_classes)
        runs = 15
        for s in range(runs):
            g, _ = generate_graph(
                skewed_dist, swap_iterations=0, config=ParallelConfig(seed=100 + s)
            )
            deg = g.degree_sequence()
            acc += np.bincount(cls, weights=deg, minlength=skewed_dist.n_classes)
        mean_deg = acc / (runs * skewed_dist.counts)
        rel = np.abs(mean_deg - skewed_dist.degrees) / skewed_dist.degrees
        assert rel.mean() < 0.12

    def test_process_backend_end_to_end(self, small_dist):
        """The true-parallel backend drives the whole pipeline."""
        cfg = ParallelConfig(threads=2, backend="process", seed=11)
        g, report = generate_graph(small_dist, swap_iterations=2, config=cfg)
        assert g.is_simple()
        assert report.swap_stats.iterations == 2

    def test_serial_backend_end_to_end(self, small_dist):
        cfg = ParallelConfig(threads=1, backend="serial", seed=11)
        g, _ = generate_graph(small_dist, swap_iterations=2, config=cfg)
        assert g.is_simple()


class TestFusedPipeline:
    """The fused process pipeline vs the phased composition.

    The contract is the differential-harness standard: for a fixed seed
    the fused path must produce a bitwise-identical edge list and
    identical swap statistics, across distributions, seeds, and worker
    counts.
    """

    @pytest.mark.parametrize("dist_name", ["small_dist", "skewed_dist"])
    @pytest.mark.parametrize("threads", [1, 4])
    @pytest.mark.parametrize("seed", [11, 77])
    def test_fused_matches_phased(self, request, dist_name, threads, seed):
        dist = request.getfixturevalue(dist_name)
        cfg = ParallelConfig(threads=threads, backend="process", seed=seed)
        fused_g, fused_r = generate_graph(dist, swap_iterations=3, config=cfg)
        phased_g, phased_r = generate_graph(
            dist, swap_iterations=3, config=cfg, pipeline=False
        )
        assert fused_r.fused and not phased_r.fused
        np.testing.assert_array_equal(fused_g.u, phased_g.u)
        np.testing.assert_array_equal(fused_g.v, phased_g.v)
        assert fused_r.swap_stats == phased_r.swap_stats
        assert fused_r.edges_generated == phased_r.edges_generated

    def test_fused_identical_across_process_counts(self, skewed_dist):
        """Physical worker count never changes results: shard geometry
        and chunk partitioning are pinned to the logical thread count."""
        cfg1 = ParallelConfig(threads=4, backend="process", seed=5, processes=1)
        cfg2 = ParallelConfig(threads=4, backend="process", seed=5, processes=2)
        g1, r1 = generate_graph(skewed_dist, swap_iterations=2, config=cfg1)
        g2, r2 = generate_graph(skewed_dist, swap_iterations=2, config=cfg2)
        assert r1.fused and r2.fused
        np.testing.assert_array_equal(g1.u, g2.u)
        np.testing.assert_array_equal(g1.v, g2.v)
        assert r1.swap_stats == r2.swap_stats

    def test_fused_zero_iterations_matches_phased(self, skewed_dist):
        cfg = ParallelConfig(threads=4, backend="process", seed=9)
        fused_g, fused_r = generate_graph(skewed_dist, swap_iterations=0, config=cfg)
        phased_g, phased_r = generate_graph(
            skewed_dist, swap_iterations=0, config=cfg, pipeline=False
        )
        np.testing.assert_array_equal(fused_g.u, phased_g.u)
        np.testing.assert_array_equal(fused_g.v, phased_g.v)
        assert fused_r.swap_stats == phased_r.swap_stats
        assert fused_r.swap_stats.iterations == 0

    def test_fused_report_phase_attribution(self, skewed_dist):
        """Fused runs still attribute wall time to the three phases, and
        total_seconds is the true wall measurement."""
        cfg = ParallelConfig(threads=2, backend="process", seed=3)
        _, report = generate_graph(skewed_dist, swap_iterations=2, config=cfg)
        assert report.fused
        assert set(report.phase_seconds) == {
            "probabilities", "edge_generation", "swap",
        }
        assert all(v >= 0 for v in report.phase_seconds.values())
        assert report.wall_seconds is not None
        assert report.total_seconds >= sum(report.phase_seconds.values()) - 1e-9

    def test_fused_callback_forwarded(self, small_dist):
        cfg = ParallelConfig(threads=2, backend="process", seed=11)
        seen = []
        _, report = generate_graph(
            small_dist, swap_iterations=3, config=cfg,
            callback=lambda it, g: seen.append(it),
        )
        assert report.fused
        assert seen == [0, 1, 2]

    def test_single_pool_spawn_per_generate(self, skewed_dist, monkeypatch):
        """The fused pipeline spawns exactly one worker pool per call —
        the whole point of the cross-phase pool."""
        from repro.parallel import mp_backend

        spawns = []
        orig_init = mp_backend.PipelineWorkerPool.__init__

        def counting_init(self, *args, **kwargs):
            spawns.append(type(self).__name__)
            return orig_init(self, *args, **kwargs)

        monkeypatch.setattr(mp_backend.PipelineWorkerPool, "__init__", counting_init)
        cfg = ParallelConfig(threads=4, backend="process", seed=7)
        _, report = generate_graph(skewed_dist, swap_iterations=3, config=cfg)
        assert report.fused
        # one PipelineWorkerPool and no SwapWorkerPool (subclass spawns
        # would also be recorded here under their own name)
        assert spawns == ["PipelineWorkerPool"]

    def test_vectorized_backend_never_fused(self, small_dist, cfg):
        _, report = generate_graph(small_dist, swap_iterations=1, config=cfg)
        assert not report.fused
        # every composition reports a true wall measurement
        assert report.wall_seconds is not None
