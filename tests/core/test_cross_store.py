"""Cross-store differential matrix: ram vs mmap must be bitwise-identical.

The out-of-core engine's contract is that the backing store changes
*where* bytes live, never what they are: for a fixed seed and config,
the mmap-backed run of every phase — fused and phased, on every backend
— reproduces the in-RAM run's edge arrays bit for bit.  The matrix here
is the enforcement: (serial | vectorized | process) × (fused | phased) ×
(ram | mmap forced | auto under a tiny budget), all compared against the
ram baseline of the same cell.
"""

import os

import numpy as np
import pytest

from repro.core.generate import generate_graph
from repro.graph.degree import DegreeDistribution
from repro.parallel.runtime import ParallelConfig


@pytest.fixture(autouse=True)
def _isolated_spill_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path / "spill"))


def _dist():
    return DegreeDistribution(degrees=[1, 2, 3, 6], counts=[90, 60, 30, 6])


STORES = (
    ("ram", 0),
    ("mmap", 0),
    ("auto", 1 << 13),  # tiny budget: auto must resolve to mmap + spill
)


class TestCrossStoreMatrix:
    @pytest.mark.parametrize("backend", ["serial", "vectorized", "process"])
    @pytest.mark.parametrize("pipeline", [True, False],
                             ids=["fused", "phased"])
    def test_store_never_changes_the_graph(self, backend, pipeline):
        dist = _dist()
        baseline = None
        for store, budget in STORES:
            cfg = ParallelConfig(
                threads=2, backend=backend, seed=5,
                store=store, memory_budget_bytes=budget,
            )
            out, report = generate_graph(
                dist, swap_iterations=2, config=cfg, pipeline=pipeline,
            )
            if baseline is None:
                baseline = out
                continue
            np.testing.assert_array_equal(
                np.asarray(out.u), np.asarray(baseline.u),
                err_msg=f"{backend}/{'fused' if pipeline else 'phased'}/"
                        f"{store}: u diverged from the ram baseline",
            )
            np.testing.assert_array_equal(
                np.asarray(out.v), np.asarray(baseline.v),
                err_msg=f"{backend}/{'fused' if pipeline else 'phased'}/"
                        f"{store}: v diverged from the ram baseline",
            )

    def test_mmap_run_leaves_no_spill_files(self, tmp_path):
        """Release-on-return settles the disk debt before the run ends."""
        dist = _dist()
        cfg = ParallelConfig(threads=2, backend="vectorized", seed=5,
                             store="mmap")
        generate_graph(dist, swap_iterations=1, config=cfg)
        spill = tmp_path / "spill"
        leftovers = (
            [f for f in os.listdir(spill) if f.endswith(".bin")]
            if spill.is_dir() else []
        )
        assert leftovers == []

    def test_autotuned_process_run_matches_static_under_mmap(self):
        """Autotuning reshapes execution, never results — including when
        the replan happens on a store-backed run."""
        dist = _dist()
        outs = []
        for autotune in (False, True):
            cfg = ParallelConfig(
                threads=2, backend="process", seed=5, autotune=autotune,
                store="mmap",
            )
            out, _ = generate_graph(dist, swap_iterations=2, config=cfg)
            outs.append(out)
        np.testing.assert_array_equal(np.asarray(outs[0].u), np.asarray(outs[1].u))
        np.testing.assert_array_equal(np.asarray(outs[0].v), np.asarray(outs[1].v))

    @pytest.mark.parametrize("backend", ["vectorized", "process"])
    def test_resume_crosses_stores(self, tmp_path, backend):
        """A checkpoint taken by an mmap-backed run resumes correctly on
        a RAM-backed config (and vice versa) — stores are execution
        detail, like backends."""
        dist = _dist()
        ref, _ = generate_graph(
            dist, swap_iterations=4,
            config=ParallelConfig(threads=2, backend=backend, seed=9),
        )

        class Stop(Exception):
            pass

        def bail(it, g):
            if it == 1:
                raise Stop()

        ckpt = tmp_path / "ckpt"
        mmap_cfg = ParallelConfig(threads=2, backend=backend, seed=9,
                                  store="mmap")
        with pytest.raises(Stop):
            generate_graph(
                dist, swap_iterations=4, config=mmap_cfg,
                checkpoint_dir=ckpt, checkpoint_every=1, callback=bail,
            )
        ram_cfg = ParallelConfig(threads=2, backend=backend, seed=9,
                                 store="ram")
        out, report = generate_graph(
            dist, swap_iterations=4, config=ram_cfg,
            checkpoint_dir=ckpt, checkpoint_every=1, resume_from=ckpt,
        )
        assert report.resumed
        np.testing.assert_array_equal(np.asarray(out.u), np.asarray(ref.u))
        np.testing.assert_array_equal(np.asarray(out.v), np.asarray(ref.v))
