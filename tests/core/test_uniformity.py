"""Uniform-sampling validation of the swap MCMC (Milo et al. [22] style).

The paper: "We have validated that our procedure produces a
minimally-biased uniform sample by repeating several variations of an
experiment from prior work [22].  These experiments demonstrate that a
sample of graphs produced from repeated swaps matches an analytically
expected sample."

We use degree sequences whose simple-graph space is small and exactly
countable:

- all degrees 1 on 4 vertices → the 3 perfect matchings, uniform 1/3;
- 2-regular on 6 vertices → 70 labeled graphs falling into two
  isomorphism classes: one 6-cycle (60 graphs, p=6/7) or two triangles
  (10 graphs, p=1/7).
"""

import numpy as np
import pytest
from collections import Counter

from repro.core.swap import serial_swap_chain, swap_edges
from repro.graph.edgelist import EdgeList
from repro.parallel.runtime import ParallelConfig


def graph_state(g: EdgeList) -> tuple:
    """Canonical hashable identity of a labeled simple graph."""
    pairs = np.sort(np.stack([g.u, g.v], axis=1), axis=1)
    return tuple(sorted(map(tuple, pairs.tolist())))


def six_cycle() -> EdgeList:
    u = np.arange(6)
    return EdgeList(u, (u + 1) % 6, 6)


def count_components(g: EdgeList) -> int:
    from repro.graph.components import component_sizes

    return len(component_sizes(g))


class TestMatchingsUniform:
    """Degrees all 1 on 4 vertices: 3 states, each with probability 1/3."""

    def test_parallel_chain(self):
        start = EdgeList([0, 2], [1, 3], 4)
        counts = Counter()
        runs = 900
        for s in range(runs):
            counts[graph_state(swap_edges(start, 6, ParallelConfig(seed=s)))] += 1
        assert len(counts) == 3
        expected = runs / 3
        chi2 = sum((c - expected) ** 2 / expected for c in counts.values())
        # dof=2; 99.9% critical value 13.8
        assert chi2 < 13.8

    def test_serial_chain(self):
        start = EdgeList([0, 2], [1, 3], 4)
        counts = Counter()
        rng = np.random.default_rng(0)
        state = serial_swap_chain(start, 50, rng)
        samples = 900
        for _ in range(samples):
            state = serial_swap_chain(state, 10, rng)
            counts[graph_state(state)] += 1
        assert len(counts) == 3
        expected = samples / 3
        chi2 = sum((c - expected) ** 2 / expected for c in counts.values())
        # correlated samples inflate variance; generous 3x slack on the
        # dof=2 99.9% critical value
        assert chi2 < 3 * 13.8


class TestTwoRegularUniform:
    """2-regular on 6 vertices: P(single 6-cycle) = 60/70 = 6/7."""

    EXPECT = 6 / 7

    def test_parallel_chain(self):
        runs = 500
        hits = 0
        for s in range(runs):
            out = swap_edges(six_cycle(), 12, ParallelConfig(seed=s, threads=4))
            assert out.is_simple()
            hits += count_components(out) == 1
        frac = hits / runs
        sd = np.sqrt(self.EXPECT * (1 - self.EXPECT) / runs)
        assert abs(frac - self.EXPECT) < 4 * sd + 0.01

    def test_serial_chain(self):
        rng = np.random.default_rng(1)
        state = serial_swap_chain(six_cycle(), 500, rng)
        samples = 500
        hits = 0
        for _ in range(samples):
            state = serial_swap_chain(state, 20, rng)
            hits += count_components(state) == 1
        frac = hits / samples
        sd = np.sqrt(self.EXPECT * (1 - self.EXPECT) / samples)
        # autocorrelation slack
        assert abs(frac - self.EXPECT) < 6 * sd + 0.01

    def test_both_classes_reachable(self):
        """The chain is irreducible: both isomorphism classes appear."""
        seen = set()
        for s in range(60):
            out = swap_edges(six_cycle(), 12, ParallelConfig(seed=s))
            seen.add(count_components(out))
        assert seen == {1, 2}


class TestStateSpaceExploration:
    def test_all_70_labeled_states_visited(self):
        """Long sampling visits the entire 2-regular state space."""
        states = set()
        rng = np.random.default_rng(2)
        state = six_cycle()
        for _ in range(3000):
            state = serial_swap_chain(state, 5, rng)
            states.add(graph_state(state))
        assert len(states) == 70
