"""Tests for the probability-generation heuristic (Section IV-A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.probabilities import (
    ProbabilityResult,
    expected_degrees,
    generate_probabilities,
)
from repro.datasets.synthetic import deterministic_powerlaw
from repro.graph.degree import DegreeDistribution


class TestInvariants:
    def check(self, dist, **kw):
        res = generate_probabilities(dist, **kw)
        P = res.P
        k = dist.n_classes
        assert P.shape == (k, k)
        # valid probabilities
        assert (P >= 0).all() and (P <= 1).all()
        # symmetric
        np.testing.assert_allclose(P, P.T)
        # residuals non-negative and bounded by the input stubs
        assert (res.residual_stubs >= -1e-9).all()
        assert res.residual_stubs.sum() <= dist.stub_count()
        return res

    def test_small(self, small_dist):
        self.check(small_dist)

    def test_skewed(self, skewed_dist):
        self.check(skewed_dist)

    def test_regular_single_class(self):
        # 3-regular on 8 vertices: one class; everything intra-class
        dist = DegreeDistribution([3], [8])
        res = self.check(dist)
        assert res.P[0, 0] > 0

    def test_two_hubs(self):
        dist = DegreeDistribution([1, 5], [10, 2])
        res = self.check(dist)
        # hubs must mostly attach to the degree-1 mass
        assert res.P[0, 1] > res.P[0, 0]

    @given(st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_property_random_powerlaws(self, seed):
        from repro.datasets.synthetic import sampled_powerlaw

        dist = sampled_powerlaw(100, 2.2, 1, 30, seed=seed)
        self.check(dist)

    @pytest.mark.parametrize("order", ["desc_degree", "asc_degree", "desc_stubs"])
    def test_orders(self, skewed_dist, order):
        self.check(skewed_dist, order=order)

    def test_unknown_order(self, small_dist):
        with pytest.raises(ValueError):
            generate_probabilities(small_dist, order="random")

    def test_unknown_allocation(self, small_dist):
        with pytest.raises(ValueError):
            generate_probabilities(small_dist, allocation="thirds")

    def test_bad_passes(self, small_dist):
        with pytest.raises(ValueError):
            generate_probabilities(small_dist, passes=0)


class TestExpectedDegrees:
    """The system of equations: Σ_j n_j P_ij − P_ii ≈ d_i."""

    @pytest.mark.parametrize(
        "dist_fixture", ["small_dist", "skewed_dist"]
    )
    def test_expected_degree_close(self, dist_fixture, request):
        dist = request.getfixturevalue(dist_fixture)
        res = generate_probabilities(dist)
        got = expected_degrees(res.P, dist)
        rel = np.abs(got - dist.degrees) / dist.degrees
        assert rel.mean() < 0.05
        assert rel.max() < 0.25

    def test_regular_exact(self):
        dist = DegreeDistribution([3], [8])
        res = generate_probabilities(dist)
        got = expected_degrees(res.P, dist)
        assert got[0] == pytest.approx(3.0, rel=0.05)

    def test_expected_edges_close_to_m(self, skewed_dist):
        res = generate_probabilities(skewed_dist)
        assert res.total_expected_edges == pytest.approx(skewed_dist.m, rel=0.06)

    def test_residual_equals_degree_shortfall(self, skewed_dist):
        """Unallocated stubs are exactly the expected-degree deficit."""
        res = generate_probabilities(skewed_dist)
        got = expected_degrees(res.P, skewed_dist)
        shortfall = ((skewed_dist.degrees - got) * skewed_dist.counts).sum()
        assert shortfall == pytest.approx(res.residual_stubs.sum(), abs=1.0)

    def test_multi_pass_not_worse(self, skewed_dist):
        one = generate_probabilities(skewed_dist, passes=1).residual_stubs.sum()
        three = generate_probabilities(skewed_dist, passes=3).residual_stubs.sum()
        assert three <= one + 1e-9

    def test_halved_variant_single_pass_deficit(self, skewed_dist):
        """One half-allocation sweep leaves a geometric remainder."""
        res = generate_probabilities(skewed_dist, allocation="halved")
        got = expected_degrees(res.P, skewed_dist)
        rel = np.abs(got - skewed_dist.degrees) / skewed_dist.degrees
        assert 0.1 < rel.mean() < 0.4

    def test_halved_variant_converges_with_passes(self, skewed_dist):
        res = generate_probabilities(skewed_dist, allocation="halved", passes=6)
        got = expected_degrees(res.P, skewed_dist)
        rel = np.abs(got - skewed_dist.degrees) / skewed_dist.degrees
        assert rel.mean() < 0.02

    def test_chung_lu_would_overflow_but_we_do_not(self):
        """The motivating case: d_i d_j / 2m > 1 yet our P stays valid."""
        dist = deterministic_powerlaw(n=300, d_avg=4.0, d_max=100, n_classes=12)
        cl = np.outer(dist.degrees, dist.degrees) / dist.stub_count()
        assert cl.max() > 1.0  # naive CL breaks on this input
        res = generate_probabilities(dist)
        assert res.P.max() <= 1.0
        got = expected_degrees(res.P, dist)
        rel = np.abs(got - dist.degrees) / dist.degrees
        assert rel.mean() < 0.1


class TestClampAblation:
    def test_unclamped_requests_can_exceed_capacity(self, skewed_dist):
        """Without the pair clamp, allocations may exceed what a simple
        graph can host — demonstrating why the min() terms exist."""
        free = generate_probabilities(
            skewed_dist, clamp_pairs=False, clamp_stubs=False
        )
        clamped = generate_probabilities(skewed_dist)
        # clamped residual may be larger (it refuses infeasible mass) but
        # its P is what guarantees simplicity; the unclamped E may demand
        # more edges between hub classes than exist vertex pairs
        from repro.core.probabilities import _pair_capacity

        cap = _pair_capacity(skewed_dist)
        assert (free.expected_edge_counts - cap > 1e-9).any()
        assert (clamped.expected_edge_counts <= cap + 1e-9).all()

    def test_probability_clipped_even_without_clamps(self, skewed_dist):
        res = generate_probabilities(skewed_dist, clamp_pairs=False, clamp_stubs=False)
        assert (res.P <= 1.0).all()


class TestCostAccounting:
    def test_phase_recorded(self, small_dist):
        from repro.parallel.cost_model import CostModel

        cost = CostModel()
        generate_probabilities(small_dist, cost=cost)
        phase = cost.phase("probabilities")
        assert phase.work == small_dist.n_classes**2
        assert phase.depth == small_dist.n_classes
