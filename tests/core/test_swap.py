"""Tests for parallel double-edge swaps (Algorithm III.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.swap import SwapStats, serial_swap_chain, swap_edges
from repro.graph.edgelist import EdgeList
from repro.parallel.runtime import ParallelConfig


def random_simple_graph(n, m, seed):
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, 3 * m)
    v = rng.integers(0, n, 3 * m)
    keep = u != v
    g = EdgeList(u[keep], v[keep], n).simplify()
    return EdgeList(g.u[:m], g.v[:m], n)


class TestInvariants:
    """Swaps must preserve degrees and never break simplicity."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_degree_sequence_preserved(self, seed):
        g = random_simple_graph(50, 120, seed)
        out = swap_edges(g, 5, ParallelConfig(threads=4, seed=seed))
        np.testing.assert_array_equal(g.degree_sequence(), out.degree_sequence())

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_simplicity_preserved(self, seed):
        g = random_simple_graph(40, 100, seed)
        out = swap_edges(g, 8, ParallelConfig(threads=4, seed=seed))
        assert out.is_simple()

    def test_edge_count_preserved(self, ring_graph, cfg):
        assert swap_edges(ring_graph, 3, cfg).m == ring_graph.m

    def test_zero_iterations_identity(self, ring_graph, cfg):
        out = swap_edges(ring_graph, 0, cfg)
        assert out.same_graph(ring_graph)

    def test_negative_iterations(self, ring_graph, cfg):
        with pytest.raises(ValueError):
            swap_edges(ring_graph, -1, cfg)

    def test_input_not_mutated(self, ring_graph, cfg):
        u0 = ring_graph.u.copy()
        swap_edges(ring_graph, 4, cfg)
        np.testing.assert_array_equal(ring_graph.u, u0)

    def test_empty_graph(self, cfg):
        g = EdgeList([], [], n=4)
        assert swap_edges(g, 3, cfg).m == 0

    def test_single_edge_cannot_swap(self, cfg):
        g = EdgeList([0], [1], n=3)
        out = swap_edges(g, 3, cfg)
        assert out.same_graph(g)

    def test_reproducible_for_seed(self):
        g = random_simple_graph(30, 60, 3)
        a = swap_edges(g, 4, ParallelConfig(seed=9))
        b = swap_edges(g, 4, ParallelConfig(seed=9))
        np.testing.assert_array_equal(a.u, b.u)
        np.testing.assert_array_equal(a.v, b.v)

    @given(st.integers(0, 2**31), st.integers(2, 60))
    @settings(max_examples=30, deadline=None)
    def test_property_invariants(self, seed, n):
        g = random_simple_graph(n, 2 * n, seed)
        out = swap_edges(g, 3, ParallelConfig(threads=3, seed=seed))
        assert out.is_simple()
        np.testing.assert_array_equal(g.degree_sequence(), out.degree_sequence())

    @pytest.mark.parametrize("probing", ["linear", "quadratic"])
    def test_probing_variants(self, probing):
        g = random_simple_graph(40, 90, 5)
        out = swap_edges(g, 4, ParallelConfig(seed=1), probing=probing)
        assert out.is_simple()


class TestMultigraphSimplification:
    """The O(m) model's loops and multi-edges can only be destroyed."""

    def test_self_loops_decrease(self):
        # path + self loops
        u = np.asarray([0, 1, 2, 3, 4, 0, 1])
        v = np.asarray([1, 2, 3, 4, 5, 0, 1])
        g = EdgeList(u, v)
        loops0 = g.count_self_loops()
        out = swap_edges(g, 20, ParallelConfig(seed=2))
        assert out.count_self_loops() <= loops0
        np.testing.assert_array_equal(
            np.sort(g.degree_sequence()), np.sort(out.degree_sequence())
        )

    def test_multigraph_eventually_simple(self):
        from repro.datasets.synthetic import deterministic_powerlaw
        from repro.generators.chung_lu import chung_lu_om

        dist = deterministic_powerlaw(300, 4.0, 30, 10)
        g = chung_lu_om(dist, ParallelConfig(seed=4))
        assert not g.is_simple()
        out = swap_edges(g, 30, ParallelConfig(seed=4))
        assert out.count_self_loops() == 0
        assert out.count_multi_edges() <= 1  # the paper: "about two dozen
        # or so swap iterations is sufficient to eliminate all multi-edges"

    def test_never_creates_defects(self):
        u = np.asarray([0, 0, 1, 2, 3])
        v = np.asarray([1, 1, 2, 3, 0])
        g = EdgeList(u, v)
        for it in (1, 2, 4, 8):
            out = swap_edges(g, it, ParallelConfig(seed=it))
            assert out.count_self_loops() <= g.count_self_loops()
            assert out.count_multi_edges() <= g.count_multi_edges()


class TestSwapStats:
    def test_counts_consistent(self):
        g = random_simple_graph(50, 150, 7)
        stats = SwapStats()
        swap_edges(g, 5, ParallelConfig(seed=7), stats=stats)
        assert stats.iterations == 5
        assert stats.proposed == 5 * (g.m // 2)
        assert stats.accepted == sum(stats.accepted_per_iteration)
        assert (
            stats.accepted + stats.rejected_duplicate + stats.rejected_self_loop
            == stats.proposed
        )
        assert 0 < stats.acceptance_rate <= 1

    def test_swapped_fraction_monotone(self):
        g = random_simple_graph(60, 200, 8)
        stats = SwapStats()
        swap_edges(g, 6, ParallelConfig(seed=8), stats=stats)
        fr = stats.swapped_fraction_per_iteration
        assert all(b >= a for a, b in zip(fr, fr[1:]))
        assert stats.swapped_fraction == fr[-1]
        assert 0 < stats.swapped_fraction <= 1

    def test_empty_stats(self):
        assert SwapStats().acceptance_rate == 0.0
        assert SwapStats().swapped_fraction == 0.0

    def test_callback_snapshots(self, cfg):
        g = random_simple_graph(30, 80, 9)
        seen = []
        swap_edges(g, 3, cfg, callback=lambda it, gr: seen.append((it, gr.m)))
        assert [s[0] for s in seen] == [0, 1, 2]
        assert all(m == g.m for _, m in seen)

    def test_cost_model_phases(self, cfg):
        from repro.parallel.cost_model import CostModel

        g = random_simple_graph(30, 80, 9)
        cost = CostModel()
        swap_edges(g, 2, cfg, cost=cost)
        assert cost.phase("permutation").work > 0
        assert cost.phase("swap").work == 2 * 2 * g.m


class TestSerialSwapChain:
    def test_invariants(self):
        g = random_simple_graph(20, 40, 1)
        out = serial_swap_chain(g, 500, 3)
        assert out.is_simple()
        np.testing.assert_array_equal(g.degree_sequence(), out.degree_sequence())

    def test_small_graph_stays(self):
        g = EdgeList([0], [1], n=2)
        out = serial_swap_chain(g, 10, 0)
        assert out.same_graph(g)

    def test_actually_moves(self):
        g = random_simple_graph(20, 40, 2)
        out = serial_swap_chain(g, 500, 4)
        assert not out.same_graph(g)

    def test_on_step_called(self):
        g = random_simple_graph(10, 15, 3)
        steps = []
        serial_swap_chain(g, 7, 5, on_step=lambda s, u, v: steps.append(s))
        assert steps == list(range(7))


class TestGraphSpaces:
    """Fosdick et al. [16]: the chain can walk different null spaces."""

    def test_unknown_space(self, ring_graph, cfg):
        with pytest.raises(ValueError, match="space"):
            swap_edges(ring_graph, 1, cfg, space="hypergraph")

    @pytest.mark.parametrize(
        "space", ["simple", "loopy", "multigraph", "loopy_multigraph"]
    )
    def test_degrees_preserved_in_every_space(self, space):
        g = random_simple_graph(40, 100, 3)
        out = swap_edges(g, 5, ParallelConfig(seed=4), space=space)
        np.testing.assert_array_equal(
            np.sort(g.degree_sequence()), np.sort(out.degree_sequence())
        )

    def test_loopy_multigraph_accepts_everything(self):
        g = random_simple_graph(40, 100, 5)
        stats = SwapStats()
        swap_edges(g, 3, ParallelConfig(seed=5), space="loopy_multigraph", stats=stats)
        assert stats.acceptance_rate == 1.0

    def test_loopy_space_allows_loops_not_duplicates(self):
        g = random_simple_graph(30, 80, 6)
        out = swap_edges(g, 10, ParallelConfig(seed=6), space="loopy")
        assert out.count_multi_edges() == 0

    def test_loopy_space_produces_loops_eventually(self):
        hit = 0
        for s in range(10):
            g = random_simple_graph(20, 60, 100 + s)
            out = swap_edges(g, 10, ParallelConfig(seed=s), space="loopy")
            hit += out.count_self_loops() > 0
        assert hit >= 5

    def test_multigraph_space_rejects_loops(self):
        for s in range(5):
            g = random_simple_graph(20, 60, 200 + s)
            out = swap_edges(g, 10, ParallelConfig(seed=s), space="multigraph")
            assert out.count_self_loops() == 0

    def test_multigraph_space_produces_duplicates_eventually(self):
        hit = 0
        for s in range(10):
            g = random_simple_graph(20, 60, 300 + s)
            out = swap_edges(g, 10, ParallelConfig(seed=s), space="multigraph")
            hit += out.count_multi_edges() > 0
        assert hit >= 5

    def test_simple_space_strictest_acceptance(self):
        g = random_simple_graph(50, 150, 7)
        rates = {}
        for space in ("simple", "loopy", "multigraph", "loopy_multigraph"):
            stats = SwapStats()
            swap_edges(g, 4, ParallelConfig(seed=8), space=space, stats=stats)
            rates[space] = stats.acceptance_rate
        assert rates["simple"] <= min(rates.values()) + 1e-9
        assert rates["loopy_multigraph"] == 1.0


class TestSpaceInvariantProperties:
    """Seeded property-based invariants over every null-model space.

    For arbitrary (possibly defective) inputs and every ``space`` mode:
    the degree sequence is preserved exactly, forbidden defects are never
    created, and multigraph inputs are monotonically simplified in the
    spaces that reject their defects (Section VIII-A).
    """

    @staticmethod
    def _random_multigraph(seed, n):
        """A graph with planted self loops and duplicate edges."""
        rng = np.random.default_rng(seed)
        m = 2 * n
        u = rng.integers(0, n, m)
        v = rng.integers(0, n, m)
        loops = np.arange(min(3, n))
        dup_u, dup_v = u[: m // 8], v[: m // 8]
        return EdgeList(
            np.concatenate([u, dup_u, loops]),
            np.concatenate([v, dup_v, loops]),
            n,
        )

    @given(st.integers(0, 2**31), st.integers(4, 50))
    @settings(max_examples=15, deadline=None)
    @pytest.mark.parametrize(
        "space", ["simple", "loopy", "multigraph", "loopy_multigraph"]
    )
    def test_degree_sequence_exact(self, space, seed, n):
        g = self._random_multigraph(seed, n)
        out = swap_edges(g, 3, ParallelConfig(threads=3, seed=seed), space=space)
        np.testing.assert_array_equal(g.degree_sequence(), out.degree_sequence())

    @given(st.integers(0, 2**31), st.integers(4, 50))
    @settings(max_examples=15, deadline=None)
    @pytest.mark.parametrize("space", ["simple", "loopy"])
    def test_no_multi_edges_created(self, space, seed, n):
        g = self._random_multigraph(seed, n)
        out = swap_edges(g, 3, ParallelConfig(seed=seed), space=space)
        assert out.count_multi_edges() <= g.count_multi_edges()

    @given(st.integers(0, 2**31), st.integers(4, 50))
    @settings(max_examples=15, deadline=None)
    @pytest.mark.parametrize("space", ["simple", "multigraph"])
    def test_no_self_loops_created(self, space, seed, n):
        g = self._random_multigraph(seed, n)
        out = swap_edges(g, 3, ParallelConfig(seed=seed), space=space)
        assert out.count_self_loops() <= g.count_self_loops()

    @given(st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_simple_inputs_stay_simple_everywhere_defects_forbidden(self, seed):
        g = random_simple_graph(30, 80, seed)
        out = swap_edges(g, 4, ParallelConfig(seed=seed), space="simple")
        assert out.is_simple()

    @given(st.integers(0, 2**31), st.integers(6, 40))
    @settings(max_examples=10, deadline=None)
    def test_multigraph_monotonically_simplified(self, seed, n):
        """Per-iteration defect counts never increase in the simple space."""
        g = self._random_multigraph(seed, n)
        defects = []
        swap_edges(
            g, 6, ParallelConfig(seed=seed),
            callback=lambda it, gr: defects.append(
                gr.count_self_loops() + gr.count_multi_edges()
            ),
        )
        start = g.count_self_loops() + g.count_multi_edges()
        trace = [start] + defects
        assert all(b <= a for a, b in zip(trace, trace[1:])), trace


class TestSwapStatsAccumulation:
    """SwapStats reused across swap_edges calls must accumulate deltas."""

    def test_table_counters_accumulate_across_runs(self):
        g = random_simple_graph(50, 150, 11)
        stats = SwapStats()
        swap_edges(g, 2, ParallelConfig(seed=1), stats=stats)
        first_attempts = stats.table_attempts
        first_failures = stats.table_failures
        assert first_attempts > 0
        swap_edges(g, 2, ParallelConfig(seed=2), stats=stats)
        # regression: these were overwritten with `=` per iteration and
        # silently dropped the first run's counts
        assert stats.table_attempts > first_attempts
        assert stats.table_failures >= first_failures
        assert stats.iterations == 4

    def test_single_run_totals_unchanged_by_delta_accumulation(self):
        g = random_simple_graph(50, 150, 12)
        a, b = SwapStats(), SwapStats()
        swap_edges(g, 3, ParallelConfig(seed=3), stats=a)
        swap_edges(g, 3, ParallelConfig(seed=3), stats=b)
        assert a.table_attempts == b.table_attempts
        assert a.table_failures == b.table_failures

    def test_serial_chain_golden_pinned(self):
        """Integer-packed key arithmetic reproduces the numpy packing
        implementation bit-for-bit (fixed seed, fixed graph)."""
        from repro.parallel.hashtable import pack_edges

        n = 24
        u = np.arange(n)
        g = EdgeList(u, (u + 1) % n, n)
        out = serial_swap_chain(g, 500, rng=1234)
        keys = np.sort(pack_edges(out.u, out.v))
        assert int(keys.sum()) == 807453852012
        assert keys[0] == 3 and int(keys[-1]) == 81604378644
        np.testing.assert_array_equal(g.degree_sequence(), out.degree_sequence())
