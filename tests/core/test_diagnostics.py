"""Tests for the MCMC mixing diagnostics."""

import numpy as np
import pytest

from repro.core.diagnostics import (
    autocorrelation,
    effective_sample_size,
    gelman_rubin,
    integrated_autocorrelation_time,
    iterations_until_all_swapped,
    mixing_report,
    statistic_trace,
)
from repro.generators.havel_hakimi import havel_hakimi_graph
from repro.graph.edgelist import EdgeList
from repro.parallel.runtime import ParallelConfig


def trace_graph(seed=0):
    from repro.datasets.synthetic import deterministic_powerlaw

    return havel_hakimi_graph(deterministic_powerlaw(200, 4.0, 30, 10))


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        x = np.random.default_rng(0).random(100)
        assert autocorrelation(x)[0] == pytest.approx(1.0)

    def test_iid_decorrelates(self):
        x = np.random.default_rng(1).random(4000)
        rho = autocorrelation(x, 10)
        assert np.abs(rho[1:]).max() < 0.1

    def test_persistent_series_correlates(self):
        rng = np.random.default_rng(2)
        x = np.cumsum(rng.standard_normal(500))  # random walk
        rho = autocorrelation(x, 5)
        assert rho[1] > 0.8

    def test_constant_trace(self):
        rho = autocorrelation(np.full(50, 3.0), 5)
        np.testing.assert_allclose(rho, 1.0)

    def test_too_short(self):
        with pytest.raises(ValueError):
            autocorrelation(np.asarray([1.0]))

    def test_max_lag_respected(self):
        x = np.random.default_rng(3).random(100)
        assert len(autocorrelation(x, 7)) == 8


class TestIntegratedTime:
    def test_iid_near_one(self):
        x = np.random.default_rng(4).random(5000)
        assert integrated_autocorrelation_time(x) < 1.6

    def test_correlated_larger(self):
        rng = np.random.default_rng(5)
        # AR(1) with strong persistence
        x = np.zeros(3000)
        for i in range(1, len(x)):
            x[i] = 0.95 * x[i - 1] + rng.standard_normal()
        assert integrated_autocorrelation_time(x) > 5.0

    def test_floor_at_one(self):
        x = np.asarray([1.0, -1.0] * 100)  # anti-correlated
        assert integrated_autocorrelation_time(x) >= 1.0


class TestEffectiveSampleSize:
    def test_iid_close_to_n(self):
        x = np.random.default_rng(6).random(2000)
        assert effective_sample_size(x) > 1200

    def test_never_exceeds_reasonable_bound(self):
        x = np.random.default_rng(7).random(100)
        assert effective_sample_size(x) <= 2 * len(x)


class TestGelmanRubin:
    def test_same_distribution_near_one(self):
        rng = np.random.default_rng(8)
        chains = [rng.random(500) for _ in range(4)]
        assert gelman_rubin(chains) == pytest.approx(1.0, abs=0.05)

    def test_shifted_chains_flagged(self):
        rng = np.random.default_rng(9)
        chains = [rng.random(200), rng.random(200) + 5.0]
        assert gelman_rubin(chains) > 2.0

    def test_needs_two_chains(self):
        with pytest.raises(ValueError):
            gelman_rubin([np.zeros(10)])

    def test_needs_samples(self):
        with pytest.raises(ValueError):
            gelman_rubin([np.zeros(1), np.zeros(1)])

    def test_constant_chains(self):
        assert gelman_rubin([np.full(10, 2.0), np.full(10, 2.0)]) == 1.0


class TestStatisticTrace:
    def test_length(self):
        g = trace_graph()
        trace = statistic_trace(g, 5, lambda gr: gr.m, ParallelConfig(seed=1))
        assert len(trace) == 6
        # edge count is invariant under swaps
        np.testing.assert_allclose(trace, g.m)

    def test_varying_statistic(self):
        from repro.graph.stats import degree_assortativity

        g = trace_graph()
        trace = statistic_trace(g, 8, degree_assortativity, ParallelConfig(seed=2))
        assert np.std(trace) > 0  # assortativity moves under swaps


class TestIterationsUntilAllSwapped:
    def test_reaches_target(self):
        g = trace_graph()
        its, stats = iterations_until_all_swapped(
            g, ParallelConfig(seed=3), max_iterations=64, target_fraction=0.95
        )
        assert 1 <= its < 64
        assert stats.swapped_fraction >= 0.95

    def test_paper_claim_small_iteration_count(self):
        """The paper: all edges swap within a handful of iterations."""
        g = trace_graph()
        its, _ = iterations_until_all_swapped(
            g, ParallelConfig(seed=4), max_iterations=64, target_fraction=0.999
        )
        assert its <= 20

    def test_frozen_graph_hits_cap(self):
        # a single edge can never swap
        g = EdgeList([0], [1], n=2)
        its, stats = iterations_until_all_swapped(
            g, ParallelConfig(seed=5), max_iterations=4
        )
        assert its == 4
        assert stats.swapped_fraction == 0.0

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            iterations_until_all_swapped(trace_graph(), target_fraction=0.0)


class TestMixingReport:
    def test_full_report(self):
        from repro.graph.stats import degree_assortativity

        g = trace_graph()
        report = mixing_report(
            g, degree_assortativity, iterations=12, chains=3,
            config=ParallelConfig(seed=6),
        )
        assert report.tau >= 1.0
        assert report.ess > 0
        assert 0.8 < report.r_hat < 2.0
        assert report.iterations_to_all_swapped >= 1
        assert 0 < report.acceptance_rate <= 1
