"""Tests for the parallel edge-skipping generator (Algorithm IV.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as sps

from repro.core.edge_skip import generate_edges, skip_positions, triangle_unrank
from repro.graph.degree import DegreeDistribution
from repro.parallel.runtime import ParallelConfig


class TestSkipPositions:
    def test_p_zero(self):
        assert skip_positions(0.0, 100, 0).shape == (0,)

    def test_p_one_selects_all(self):
        np.testing.assert_array_equal(skip_positions(1.0, 5, 0), np.arange(5))

    def test_empty_space(self):
        assert skip_positions(0.5, 0, 0).shape == (0,)

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            skip_positions(1.5, 10, 0)

    def test_bad_end(self):
        with pytest.raises(ValueError):
            skip_positions(0.5, -1, 0)

    def test_positions_sorted_unique_in_range(self):
        pos = skip_positions(0.3, 10_000, 42)
        assert (np.diff(pos) > 0).all()
        assert pos[0] >= 0 and pos[-1] < 10_000

    def test_reproducible(self):
        np.testing.assert_array_equal(
            skip_positions(0.2, 1000, 7), skip_positions(0.2, 1000, 7)
        )

    @pytest.mark.parametrize("p", [0.01, 0.2, 0.7, 0.95])
    def test_count_matches_binomial(self, p):
        """Selection count is Binomial(end, p) — z-test over many runs."""
        end = 2000
        rng = np.random.default_rng(1)
        counts = [len(skip_positions(p, end, rng)) for _ in range(60)]
        mean = np.mean(counts)
        se = np.sqrt(end * p * (1 - p) / len(counts))
        assert abs(mean - end * p) < 5 * se + 1e-9

    def test_each_position_equally_likely(self):
        """Marginal inclusion probability is uniform across the space."""
        end, p, runs = 50, 0.3, 4000
        rng = np.random.default_rng(2)
        hits = np.zeros(end)
        for _ in range(runs):
            hits[skip_positions(p, end, rng)] += 1
        # chi-square against uniformity of hit counts
        chi2 = ((hits - hits.mean()) ** 2 / hits.mean()).sum()
        assert sps.chi2.sf(chi2, end - 1) > 1e-4

    # -- extreme probabilities: the log(1-p) underflow guard ---------------
    #
    # For p in the denormal range, log1p(-p) underflows toward -0.0-ish
    # denormals and log(r)/log1p(-p) lands beyond 2**63, where the int64
    # cast is undefined (it used to wrap to INT64_MIN and emit *negative*
    # "selected" positions).  The guard clamps skips to `end` in the float
    # domain, which is exact for every reachable skip.

    @pytest.mark.parametrize("p", [1e-320, 5e-324, 1e-100, 1e-19])
    def test_subnormal_p_no_bogus_selections(self, p):
        for seed in range(20):
            pos = skip_positions(p, 10_000, seed)
            assert (pos >= 0).all() and (pos < 10_000).all()
            assert (np.diff(pos) > 0).all()

    @given(st.integers(0, 2**32), st.integers(1, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_property_positions_always_in_range(self, seed, end):
        """Every position is valid for every p, including extremes."""
        for p in (1e-320, 1e-12, 0.5, 1.0 - 1e-12, 1.0):
            pos = skip_positions(p, end, seed)
            assert (pos >= 0).all() and (pos < end).all()
            assert (np.diff(pos) > 0).all()

    def test_tiny_p_expected_count(self):
        """E[#selected] = p*end still holds under the clamp for tiny p."""
        p, end, runs = 2e-5, 100_000, 300
        rng = np.random.default_rng(3)
        counts = [len(skip_positions(p, end, rng)) for _ in range(runs)]
        expect = p * end  # = 2 per run
        se = np.sqrt(expect / runs)
        assert abs(np.mean(counts) - expect) < 6 * se

    def test_subnormal_p_selects_nothing_in_practice(self):
        """p = 1e-320 over a modest space: selection probability ~ 1e-316."""
        for seed in range(50):
            assert len(skip_positions(1e-320, 10_000, seed)) == 0

    def test_p_near_one_selects_almost_all(self):
        p, end = 1.0 - 1e-12, 5_000
        counts = [len(skip_positions(p, end, s)) for s in range(30)]
        assert min(counts) >= end - 1  # at most one miss plausible, ~never
        assert max(counts) <= end

    def test_p_one_fast_path_is_exact(self):
        """p >= 1 bypasses the skip walk entirely: exhaustive selection."""
        for end in (1, 2, 17, 1000):
            np.testing.assert_array_equal(skip_positions(1.0, end, 0), np.arange(end))


class TestTriangleUnrank:
    def test_first_positions(self):
        u, v = triangle_unrank(np.asarray([0, 1, 2, 3]))
        np.testing.assert_array_equal(u, [1, 2, 2, 3])
        np.testing.assert_array_equal(v, [0, 0, 1, 0])

    def test_bijection_small(self):
        n = 40
        end = n * (n - 1) // 2
        u, v = triangle_unrank(np.arange(end))
        assert (v < u).all()
        assert (u < n).all()
        pairs = set(zip(u.tolist(), v.tolist()))
        assert len(pairs) == end

    def test_large_positions_exact(self):
        """Float sqrt rounding must be corrected for huge ranks."""
        pos = np.asarray([10**14, 10**14 + 1, 2 * 10**15])
        u, v = triangle_unrank(pos)
        back = u * (u - 1) // 2 + v
        np.testing.assert_array_equal(back, pos)

    @given(st.lists(st.integers(0, 2**45), min_size=1, max_size=50))
    def test_property_inverse(self, ranks):
        pos = np.asarray(ranks, dtype=np.int64)
        u, v = triangle_unrank(pos)
        assert (v >= 0).all() and (v < u).all()
        np.testing.assert_array_equal(u * (u - 1) // 2 + v, pos)


class TestGenerateEdges:
    def full_matrix(self, dist):
        return np.ones((dist.n_classes, dist.n_classes))

    def test_probability_one_gives_complete_graph(self, small_dist):
        g = generate_edges(self.full_matrix(small_dist), small_dist, ParallelConfig(seed=0))
        n = small_dist.n
        assert g.m == n * (n - 1) // 2
        assert g.is_simple()

    def test_probability_zero_gives_empty(self, small_dist):
        P = np.zeros((small_dist.n_classes, small_dist.n_classes))
        g = generate_edges(P, small_dist, ParallelConfig(seed=0))
        assert g.m == 0

    def test_output_always_simple(self, skewed_dist, cfg):
        rng = np.random.default_rng(5)
        k = skewed_dist.n_classes
        P = rng.random((k, k)) * 0.05
        P = (P + P.T) / 2
        g = generate_edges(P, skewed_dist, cfg)
        assert g.is_simple()

    def test_expected_edge_count(self, small_dist):
        """Mean output size matches sum of p * space size."""
        k = small_dist.n_classes
        P = np.full((k, k), 0.3)
        counts = small_dist.counts
        expect = 0.0
        for i in range(k):
            for j in range(i + 1):
                size = counts[i] * (counts[i] - 1) // 2 if i == j else counts[i] * counts[j]
                expect += 0.3 * size
        sizes = [
            generate_edges(P, small_dist, ParallelConfig(seed=s)).m for s in range(200)
        ]
        se = np.sqrt(expect) / np.sqrt(len(sizes))
        assert abs(np.mean(sizes) - expect) < 6 * se

    def test_asymmetric_matrix_rejected(self, small_dist):
        P = np.zeros((4, 4))
        P[0, 1] = 0.5
        with pytest.raises(ValueError, match="symmetric"):
            generate_edges(P, small_dist, ParallelConfig(seed=0))

    def test_wrong_shape_rejected(self, small_dist):
        with pytest.raises(ValueError):
            generate_edges(np.zeros((2, 2)), small_dist, ParallelConfig(seed=0))

    def test_out_of_range_rejected(self, small_dist):
        P = np.full((4, 4), 1.5)
        with pytest.raises(ValueError):
            generate_edges(P, small_dist, ParallelConfig(seed=0))

    def test_serial_backend_simple_output(self, small_dist):
        P = self.full_matrix(small_dist) * 0.4
        g = generate_edges(P, small_dist, ParallelConfig(seed=3, backend="serial"))
        assert g.is_simple()

    def test_process_backend_simple_output(self, small_dist):
        P = self.full_matrix(small_dist) * 0.4
        g = generate_edges(
            P, small_dist, ParallelConfig(seed=3, backend="process", threads=2)
        )
        assert g.is_simple()

    def test_backends_statistically_consistent(self, small_dist):
        """All three backends draw from the same distribution."""
        P = self.full_matrix(small_dist) * 0.35
        sizes = {}
        for backend in ("vectorized", "serial"):
            sizes[backend] = np.mean(
                [
                    generate_edges(
                        P, small_dist, ParallelConfig(seed=s, backend=backend)
                    ).m
                    for s in range(120)
                ]
            )
        assert abs(sizes["vectorized"] - sizes["serial"]) < 6.0

    def test_vertices_stay_in_their_class(self, small_dist):
        """Edges from space (i, j) must join class-i and class-j vertices."""
        k = small_dist.n_classes
        # only allow hub (class 3) to degree-1 (class 0) edges
        P = np.zeros((k, k))
        P[0, 3] = P[3, 0] = 1.0
        g = generate_edges(P, small_dist, ParallelConfig(seed=0))
        offsets = small_dist.class_offsets()
        lo = np.minimum(g.u, g.v)
        hi = np.maximum(g.u, g.v)
        assert (lo < offsets[1]).all()  # class 0 ids
        assert (hi >= offsets[3]).all()  # hub id

    def test_diagonal_space_stays_in_class(self, small_dist):
        k = small_dist.n_classes
        P = np.zeros((k, k))
        P[1, 1] = 1.0
        g = generate_edges(P, small_dist, ParallelConfig(seed=0))
        offsets = small_dist.class_offsets()
        assert g.m == small_dist.counts[1] * (small_dist.counts[1] - 1) // 2
        assert (g.u >= offsets[1]).all() and (g.u < offsets[2]).all()
        assert (g.v >= offsets[1]).all() and (g.v < offsets[2]).all()

    def test_cost_model_records_work(self, small_dist):
        from repro.parallel.cost_model import CostModel

        cost = CostModel()
        generate_edges(self.full_matrix(small_dist) * 0.5, small_dist,
                       ParallelConfig(seed=1), cost=cost)
        phase = cost.phase("edge_generation")
        assert phase.work > 0 and phase.depth > 0


class TestSpaceSplitting:
    """The paper's within-space parallelization: splitting a Bernoulli
    space into segments is distribution-equivalent."""

    def test_split_preserves_total_size(self, small_dist):
        from repro.core.edge_skip import _space_table, split_spaces

        P = np.full((4, 4), 0.5)
        table = _space_table(P, small_dist)
        split = split_spaces(table, 5)
        assert split["end"].sum() == table["end"].sum()
        assert (split["end"] <= 5).all()

    def test_split_bases_tile_each_space(self, small_dist):
        from repro.core.edge_skip import _space_table, split_spaces

        P = np.full((4, 4), 0.5)
        table = _space_table(P, small_dist)
        split = split_spaces(table, 4)
        # segments of each parent space must tile [0, end)
        for s in range(len(table["p"])):
            mask = (split["i"] == table["i"][s]) & (split["j"] == table["j"][s])
            bases = np.sort(split["base"][mask])
            sizes = split["end"][mask][np.argsort(split["base"][mask])]
            assert bases[0] == 0
            np.testing.assert_array_equal(bases[1:], (bases + sizes)[:-1])

    def test_invalid_max_size(self, small_dist):
        from repro.core.edge_skip import _space_table, split_spaces

        table = _space_table(np.full((4, 4), 0.5), small_dist)
        with pytest.raises(ValueError):
            split_spaces(table, 0)

    def test_split_output_still_simple_and_unbiased(self, small_dist):
        """Mean edge count is unchanged by splitting."""
        P = np.full((4, 4), 0.3)
        plain = [
            generate_edges(P, small_dist, ParallelConfig(seed=s)).m
            for s in range(120)
        ]
        split = [
            generate_edges(
                P, small_dist, ParallelConfig(seed=1000 + s), max_space_size=4
            ).m
            for s in range(120)
        ]
        g = generate_edges(P, small_dist, ParallelConfig(seed=0), max_space_size=4)
        assert g.is_simple()
        assert abs(np.mean(plain) - np.mean(split)) < 6.0

    def test_split_vertices_stay_in_class(self, small_dist):
        k = small_dist.n_classes
        P = np.zeros((k, k))
        P[0, 3] = P[3, 0] = 1.0
        g = generate_edges(P, small_dist, ParallelConfig(seed=2), max_space_size=2)
        offsets = small_dist.class_offsets()
        assert g.m == small_dist.counts[0] * small_dist.counts[3]
        lo = np.minimum(g.u, g.v)
        hi = np.maximum(g.u, g.v)
        assert (lo < offsets[1]).all() and (hi >= offsets[3]).all()
