"""Tests for exact small-space enumeration and exact uniformity checks."""

from collections import Counter

import numpy as np
import pytest

from repro.core.exact import (
    count_simple_graphs,
    enumerate_simple_graphs,
    exact_attachment_matrix,
)
from repro.core.probabilities import expected_degrees
from repro.core.swap import swap_edges
from repro.graph.degree import DegreeDistribution
from repro.parallel.runtime import ParallelConfig


class TestEnumeration:
    @pytest.mark.parametrize(
        "degrees,counts,expected",
        [
            ([2], [6], 70),   # 2-regular on 6: 60 hexagons + 10 triangle pairs
            ([1], [4], 3),    # perfect matchings of K4
            ([3], [4], 1),    # K4 itself
            ([1, 2], [2, 2], 2),  # labeled paths
            ([1], [2], 1),    # single edge
        ],
    )
    def test_known_counts(self, degrees, counts, expected):
        assert count_simple_graphs(DegreeDistribution(degrees, counts)) == expected

    def test_non_graphical_empty(self):
        assert count_simple_graphs(DegreeDistribution([1, 3], [1, 3])) == 0

    def test_every_graph_realizes_degrees(self):
        dist = DegreeDistribution([1, 2, 3], [3, 2, 1])
        graphs = enumerate_simple_graphs(dist)
        target = np.sort(dist.expand())
        for g in graphs:
            assert g.is_simple()
            np.testing.assert_array_equal(np.sort(g.degree_sequence()), target)

    def test_all_distinct(self):
        dist = DegreeDistribution([2], [6])
        graphs = enumerate_simple_graphs(dist)
        keys = {tuple(sorted(g.keys().tolist())) for g in graphs}
        assert len(keys) == len(graphs)

    def test_limit(self):
        dist = DegreeDistribution([2], [6])
        assert len(enumerate_simple_graphs(dist, limit=5)) == 5

    def test_too_large_rejected(self):
        with pytest.raises(ValueError, match="n <= 14"):
            enumerate_simple_graphs(DegreeDistribution([2], [20]))

    def test_matches_networkx_enumeration_count(self):
        """Cross-check a nontrivial count by brute force over K_n edges."""
        from itertools import combinations

        dist = DegreeDistribution([1, 2, 3], [3, 2, 1])
        n = dist.n
        target = np.sort(dist.expand())
        all_pairs = list(combinations(range(n), 2))
        m = dist.m
        brute = 0
        for edge_set in combinations(all_pairs, m):
            deg = np.zeros(n, dtype=int)
            for a, b in edge_set:
                deg[a] += 1
                deg[b] += 1
            # labeled check: vertex v must hit its own intended degree
            if np.array_equal(deg, dist.expand()):
                brute += 1
        assert count_simple_graphs(dist) == brute


class TestExactAttachment:
    def test_degree_system_satisfied_exactly(self):
        dist = DegreeDistribution([1, 2, 3], [3, 2, 1])
        P = exact_attachment_matrix(dist)
        np.testing.assert_allclose(expected_degrees(P, dist), dist.degrees, atol=1e-12)

    def test_probabilities_valid_and_symmetric(self):
        dist = DegreeDistribution([1, 2], [4, 3])
        P = exact_attachment_matrix(dist)
        assert (P >= 0).all() and (P <= 1).all()
        np.testing.assert_allclose(P, P.T)

    def test_non_graphical_raises(self):
        with pytest.raises(ValueError, match="not graphical"):
            exact_attachment_matrix(DegreeDistribution([1, 3], [1, 3]))

    def test_heuristic_approximates_exact(self):
        """The Section IV-A heuristic should land near the exact uniform
        probabilities on a small instance."""
        from repro.core.probabilities import generate_probabilities

        dist = DegreeDistribution([1, 2], [4, 3])
        exact = exact_attachment_matrix(dist)
        heur = generate_probabilities(dist).P
        assert np.abs(heur - exact).max() < 0.35

    def test_swapped_sample_matches_exact(self):
        """Empirical attachment over many swap-chain samples converges to
        the exact uniform matrix — the strongest uniformity check."""
        from repro.bench.harness import uniform_reference

        dist = DegreeDistribution([1, 2], [4, 3])
        exact = exact_attachment_matrix(dist)
        from repro.graph.stats import attachment_probability_matrix

        acc = np.zeros_like(exact)
        samples = 300
        for s in range(samples):
            g = uniform_reference(dist, ParallelConfig(seed=s), swap_iterations=8)
            acc += attachment_probability_matrix(g, dist)
        acc /= samples
        assert np.abs(acc - exact).max() < 0.08


class TestSwapChainExactUniformity:
    def test_chain_visits_states_uniformly(self):
        """Chi-square of parallel-swap end states against the exact
        uniform distribution over ALL labeled realizations."""
        dist = DegreeDistribution([1, 2], [2, 2])  # 2 states
        graphs = enumerate_simple_graphs(dist)
        assert len(graphs) == 2
        start = graphs[0]
        counts = Counter()
        runs = 600
        for s in range(runs):
            out = swap_edges(start, 8, ParallelConfig(seed=s))
            counts[tuple(sorted(out.keys().tolist()))] += 1
        assert len(counts) == 2
        expected = runs / 2
        chi2 = sum((c - expected) ** 2 / expected for c in counts.values())
        assert chi2 < 10.8  # dof=1, 99.9%

    def test_chain_covers_whole_space(self):
        dist = DegreeDistribution([1, 2, 3], [3, 2, 1])
        graphs = enumerate_simple_graphs(dist)
        space = {tuple(sorted(g.keys().tolist())) for g in graphs}
        seen = set()
        start = graphs[0]
        for s in range(400):
            out = swap_edges(start, 10, ParallelConfig(seed=s))
            seen.add(tuple(sorted(out.keys().tolist())))
        assert seen == space
