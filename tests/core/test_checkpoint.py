"""Crash-consistent checkpoint/resume tests.

The durability tentpole's invariants:

- a resumed run is **bitwise-identical** to an uninterrupted run with the
  same seed — on the serial, vectorized, and process backends, and when
  resuming a checkpoint taken on a *different* backend (the degradation
  ladder direction);
- checkpoint writes are atomic: a snapshot truncated at any byte is
  detected by its checksum and the previous snapshot is used instead;
- the parent-SIGKILL fault drill (`parentkill` specs fired by the driver
  itself after a durable write) proves the whole story end to end in a
  real subprocess;
- stale-checkpoint GC never touches a live or resumable store.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.core.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointStore,
    reap_stale_checkpoints,
    run_fingerprint,
)
from repro.core.generate import generate_graph
from repro.core.swap import SwapStats, swap_edges
from repro.graph.degree import DegreeDistribution, NonGraphicalError
from repro.graph.edgelist import EdgeList
from repro.parallel.runtime import ParallelConfig

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _graph(seed=0, n=120, m=360) -> EdgeList:
    rng = np.random.default_rng(seed)
    return EdgeList(
        rng.integers(0, n, m).astype(np.int64),
        rng.integers(0, n, m).astype(np.int64),
        n,
    )


def _drop_newest(directory, k=1) -> None:
    """Simulate a crash by removing the newest k snapshot pairs."""
    snaps = sorted(f for f in os.listdir(directory) if f.endswith(".json"))
    for fn in snaps[-k:]:
        os.unlink(os.path.join(directory, fn))
        os.unlink(os.path.join(directory, fn[:-5] + ".npz"))


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        seq = store.save(
            "swap",
            swap_round=3,
            arrays={"u": np.arange(5), "flag": np.asarray([True, False])},
            meta={"rng_state": {"k": 1}},
            fingerprint="fp",
        )
        snap = store.load_latest()
        assert snap is not None and snap.seq == seq
        assert snap.phase == "swap" and snap.swap_round == 3
        assert snap.fingerprint == "fp"
        np.testing.assert_array_equal(snap.arrays["u"], np.arange(5))
        assert snap.meta["rng_state"] == {"k": 1}

    def test_empty_store_loads_none(self, tmp_path):
        assert CheckpointStore(tmp_path / "missing").load_latest() is None

    def test_invalid_phase_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="phase"):
            CheckpointStore(tmp_path).save("warmup")

    def test_prune_keeps_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for r in range(5):
            store.save("swap", swap_round=r, arrays={"u": np.arange(r + 1)})
        snaps = sorted(f for f in os.listdir(tmp_path) if f.endswith(".json"))
        assert len(snaps) == 2
        assert store.load_latest().swap_round == 4

    def test_seq_continues_across_instances(self, tmp_path):
        CheckpointStore(tmp_path).save("swap", swap_round=1)
        seq = CheckpointStore(tmp_path).save("swap", swap_round=2)
        assert seq == 1
        assert CheckpointStore(tmp_path).load_latest().swap_round == 2

    def test_truncation_at_any_byte_falls_back(self, tmp_path):
        """Acceptance criterion: corrupt the newest payload at *every*
        truncation length; the previous snapshot must always win."""
        store = CheckpointStore(tmp_path, keep=3)
        store.save("swap", swap_round=1, arrays={"u": np.arange(4)})
        store.save("swap", swap_round=2, arrays={"u": np.arange(8)})
        payload = (tmp_path / "snap-00000001.npz").read_bytes()
        for cut in range(len(payload)):
            (tmp_path / "snap-00000001.npz").write_bytes(payload[:cut])
            snap = store.load_latest()
            assert snap is not None and snap.swap_round == 1, f"cut={cut}"
        # restore and confirm the newest wins again
        (tmp_path / "snap-00000001.npz").write_bytes(payload)
        assert store.load_latest().swap_round == 2

    def test_corrupt_manifest_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("swap", swap_round=1)
        store.save("swap", swap_round=2)
        (tmp_path / "snap-00000001.json").write_text("{not json")
        assert store.load_latest().swap_round == 1

    def test_version_mismatch_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("swap", swap_round=1)
        store.save("swap", swap_round=2)
        path = tmp_path / "snap-00000001.json"
        manifest = json.loads(path.read_text())
        manifest["version"] = 999
        path.write_text(json.dumps(manifest))
        assert store.load_latest().swap_round == 1

    def test_fingerprint_mismatch_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("swap", fingerprint="runA")
        with pytest.raises(CheckpointMismatchError):
            store.load_latest(fingerprint="runB")

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for _ in range(3):
            store.save("swap", arrays={"u": np.arange(10)})
        assert not [f for f in os.listdir(tmp_path) if f.startswith(".tmp-")]

    def test_unwritable_directory_raises_checkpoint_error(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permission bits")
        target = tmp_path / "ro"
        target.mkdir()
        os.chmod(target, 0o500)
        try:
            store = CheckpointStore(target)
            with pytest.raises((CheckpointError, PermissionError)):
                store.save("swap")
        finally:
            os.chmod(target, 0o700)

    def test_clear_removes_snapshots(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("swap")
        store.clear()
        assert store.load_latest() is None


class TestRunFingerprint:
    def test_deterministic_and_order_free(self):
        assert run_fingerprint(a=1, b="x") == run_fingerprint(b="x", a=1)

    def test_sensitive_to_values(self):
        assert run_fingerprint(seed=1) != run_fingerprint(seed=2)


class TestSwapResume:
    @pytest.mark.parametrize("backend", ["serial", "vectorized", "process"])
    def test_resume_bitwise_identical(self, tmp_path, backend):
        g = _graph()
        cfg = ParallelConfig(seed=42, threads=2, backend=backend)
        ref_stats = SwapStats()
        ref = swap_edges(g, 8, cfg, stats=ref_stats)

        d = tmp_path / backend
        ckpt_stats = SwapStats()
        out = swap_edges(
            g, 8, cfg, stats=ckpt_stats, checkpoint_dir=d, checkpoint_every=2
        )
        np.testing.assert_array_equal(out.u, ref.u)
        np.testing.assert_array_equal(out.v, ref.v)
        assert ckpt_stats == ref_stats

        _drop_newest(d, 2)  # crash after round 4 of 8
        res_stats = SwapStats()
        res = swap_edges(g, 8, cfg, stats=res_stats, resume_from=d)
        np.testing.assert_array_equal(res.u, ref.u)
        np.testing.assert_array_equal(res.v, ref.v)
        assert res_stats == ref_stats

    @pytest.mark.parametrize(
        "take_auto,resume_auto", [(False, True), (True, False)]
    )
    def test_cross_autotune_resume(self, tmp_path, take_auto, resume_auto):
        """autotune and batch_size are execution knobs, not run identity:
        a checkpoint taken under the static kernels resumes mid-run under
        the autotuned ones (and back) bit for bit — the fingerprint must
        exclude both."""
        g = _graph(seed=5)
        ref = swap_edges(g, 6, ParallelConfig(seed=21, threads=2, backend="process"))
        swap_edges(
            g,
            6,
            ParallelConfig(
                seed=21, threads=2, backend="process", autotune=take_auto
            ),
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        _drop_newest(tmp_path, 1)
        out_stats = SwapStats()
        out = swap_edges(
            g,
            6,
            ParallelConfig(
                seed=21, threads=2, backend="process", autotune=resume_auto,
                batch_size=64 if resume_auto else 0,
            ),
            stats=out_stats,
            resume_from=tmp_path,
        )
        np.testing.assert_array_equal(out.u, ref.u)
        np.testing.assert_array_equal(out.v, ref.v)

    @pytest.mark.parametrize(
        "take,resume", [("process", "vectorized"), ("vectorized", "serial")]
    )
    def test_cross_backend_resume(self, tmp_path, take, resume):
        """A checkpoint taken on one backend resumes on another — the
        degradation-ladder direction — bit for bit."""
        g = _graph(seed=3)
        ref = swap_edges(g, 6, ParallelConfig(seed=9, threads=2, backend=take))
        swap_edges(
            g,
            6,
            ParallelConfig(seed=9, threads=2, backend=take),
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        _drop_newest(tmp_path, 1)
        out = swap_edges(
            g,
            6,
            ParallelConfig(seed=9, threads=2, backend=resume),
            resume_from=tmp_path,
        )
        np.testing.assert_array_equal(out.u, ref.u)
        np.testing.assert_array_equal(out.v, ref.v)

    def test_resume_from_every_retained_round(self, tmp_path):
        g = _graph(seed=5)
        cfg = ParallelConfig(seed=1, threads=2)
        ref = swap_edges(g, 6, cfg)
        swap_edges(g, 6, cfg, checkpoint_dir=tmp_path, checkpoint_every=1)
        store = CheckpointStore(tmp_path)
        rounds = sorted(
            {store._decode(s, p).swap_round for s, p in store._manifests()}
        )
        assert rounds  # keep=3 retains the last few rounds
        for r in rounds:
            snap = next(
                store._decode(s, p)
                for s, p in sorted(store._manifests())
                if store._decode(s, p).swap_round == r
            )
            out = swap_edges(g, 6, cfg, resume_from=snap)
            np.testing.assert_array_equal(out.u, ref.u)

    def test_resume_finished_run_is_noop_replay(self, tmp_path):
        g = _graph(seed=6)
        cfg = ParallelConfig(seed=2, threads=2)
        ref = swap_edges(g, 4, cfg, checkpoint_dir=tmp_path, checkpoint_every=1)
        out = swap_edges(g, 4, cfg, resume_from=tmp_path)
        np.testing.assert_array_equal(out.u, ref.u)

    def test_wrong_run_raises_mismatch(self, tmp_path):
        g = _graph(seed=7)
        swap_edges(
            g,
            4,
            ParallelConfig(seed=1, threads=2),
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        with pytest.raises(CheckpointMismatchError):
            swap_edges(
                g, 4, ParallelConfig(seed=99, threads=2), resume_from=tmp_path
            )

    def test_checkpoint_every_requires_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            swap_edges(_graph(), 2, ParallelConfig(seed=1), checkpoint_every=2)

    def test_empty_store_resume_starts_fresh(self, tmp_path):
        g = _graph(seed=8)
        cfg = ParallelConfig(seed=3, threads=2)
        ref = swap_edges(g, 3, cfg)
        out = swap_edges(g, 3, cfg, resume_from=tmp_path)
        np.testing.assert_array_equal(out.u, ref.u)

    def test_callback_not_replayed_for_finished_rounds(self, tmp_path):
        g = _graph(seed=9)
        cfg = ParallelConfig(seed=4, threads=2)
        swap_edges(g, 6, cfg, checkpoint_dir=tmp_path, checkpoint_every=2)
        _drop_newest(tmp_path, 1)  # newest retained round is now 4
        seen = []
        swap_edges(
            g, 6, cfg, resume_from=tmp_path, callback=lambda it, _: seen.append(it)
        )
        assert seen == [4, 5]


class TestGenerateResume:
    def test_phase_snapshots_and_done_short_circuit(self, tmp_path, small_dist):
        cfg = ParallelConfig(seed=11, threads=2)
        ref, ref_report = generate_graph(small_dist, swap_iterations=4, config=cfg)
        out, report = generate_graph(
            small_dist,
            swap_iterations=4,
            config=cfg,
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        np.testing.assert_array_equal(out.u, ref.u)
        assert not report.resumed
        assert CheckpointStore(tmp_path).load_latest().phase == "done"

        res, res_report = generate_graph(
            small_dist, swap_iterations=4, config=cfg, resume_from=tmp_path
        )
        np.testing.assert_array_equal(res.u, ref.u)
        np.testing.assert_array_equal(res.v, ref.v)
        assert res_report.resumed
        assert res_report.swap_stats == report.swap_stats

    def test_mid_swap_resume(self, tmp_path, small_dist):
        cfg = ParallelConfig(seed=12, threads=2)
        ref, ref_report = generate_graph(small_dist, swap_iterations=6, config=cfg)
        generate_graph(
            small_dist,
            swap_iterations=6,
            config=cfg,
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
        )
        _drop_newest(tmp_path, 2)  # lose 'done' and the last swap round
        res, report = generate_graph(
            small_dist,
            swap_iterations=6,
            config=cfg,
            resume_from=tmp_path,
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
        )
        np.testing.assert_array_equal(res.u, ref.u)
        np.testing.assert_array_equal(res.v, ref.v)
        assert report.resumed
        assert report.swap_stats == ref_report.swap_stats

    def test_process_checkpoint_resumes_on_vectorized(self, tmp_path, small_dist):
        pcfg = ParallelConfig(seed=13, threads=2, backend="process")
        ref, _ = generate_graph(small_dist, swap_iterations=4, config=pcfg)
        _, report = generate_graph(
            small_dist,
            swap_iterations=4,
            config=pcfg,
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
        )
        assert report.fused
        _drop_newest(tmp_path, 2)
        res, res_report = generate_graph(
            small_dist,
            swap_iterations=4,
            config=ParallelConfig(seed=13, threads=2),
            resume_from=tmp_path,
        )
        assert res_report.resumed
        np.testing.assert_array_equal(res.u, ref.u)
        np.testing.assert_array_equal(res.v, ref.v)

    def test_non_graphical_rejected_at_boundary(self):
        with pytest.raises(NonGraphicalError, match="not graphical"):
            generate_graph(DegreeDistribution([3], [2]), config=ParallelConfig(seed=1))


DRILL_SCRIPT = textwrap.dedent(
    """
    import sys

    import numpy as np

    from repro.core.swap import swap_edges
    from repro.graph.edgelist import EdgeList
    from repro.parallel.runtime import ParallelConfig
    from repro.parallel.shm import reap_stale

    backend, ckpt_dir, out_path = sys.argv[1], sys.argv[2], sys.argv[3]
    reap_stale()  # collect segments stranded by the killed incarnation
    rng = np.random.default_rng(0)
    n, m = 120, 360
    g = EdgeList(
        rng.integers(0, n, m).astype(np.int64),
        rng.integers(0, n, m).astype(np.int64),
        n,
    )
    cfg = ParallelConfig(seed=42, threads=2, backend=backend)
    out = swap_edges(
        g, 6, cfg, checkpoint_dir=ckpt_dir, checkpoint_every=1,
        resume_from=ckpt_dir,
    )
    np.savez(out_path, u=out.u, v=out.v)
    """
)


class TestParentKillDrill:
    """SIGKILL the driver mid-swap; the resumed run must match bit for bit."""

    def _run_drill(self, tmp_path, backend, faults):
        env = dict(os.environ, PYTHONPATH=SRC)
        ckpt = tmp_path / "store"
        out_path = tmp_path / "out.npz"
        argv = [
            sys.executable,
            "-c",
            DRILL_SCRIPT,
            backend,
            str(ckpt),
            str(out_path),
        ]
        # No pipe capture on the kill run: orphaned pool workers inherit
        # stdout/stderr and would keep the pipes open past the SIGKILL.
        first = subprocess.run(
            argv,
            env=dict(env, REPRO_FAULTS=faults),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            timeout=120,
        )
        assert (
            first.returncode == -signal.SIGKILL
        ), f"driver survived the parentkill drill: rc={first.returncode}"
        assert not out_path.exists()
        snaps = [f for f in os.listdir(ckpt) if f.endswith(".json")]
        assert snaps, "no durable snapshot before the kill"
        second = subprocess.run(argv, env=env, capture_output=True, timeout=120)
        assert second.returncode == 0, second.stderr.decode()
        self._assert_orphans_exit(str(ckpt))
        with np.load(out_path) as data:
            return data["u"].copy(), data["v"].copy()

    @staticmethod
    def _assert_orphans_exit(marker, timeout=20.0):
        """Pool workers orphaned by the SIGKILL must notice the
        reparenting and exit on their own within the poll interval."""
        deadline = time.monotonic() + timeout
        while True:
            alive = []
            for pid in os.listdir("/proc"):
                if not pid.isdigit() or pid == str(os.getpid()):
                    continue
                try:
                    with open(f"/proc/{pid}/cmdline", "rb") as fh:
                        cmdline = fh.read()
                except OSError:
                    continue
                if marker.encode() in cmdline:
                    alive.append(pid)
            if not alive:
                return
            if time.monotonic() > deadline:
                raise AssertionError(f"orphaned drill workers survive: {alive}")
            time.sleep(0.5)

    @pytest.mark.parametrize("backend", ["serial", "vectorized", "process"])
    def test_sigkilled_run_resumes_bitwise_identical(self, tmp_path, backend):
        g = _graph()
        ref = swap_edges(g, 6, ParallelConfig(seed=42, threads=2, backend=backend))
        u, v = self._run_drill(tmp_path, backend, "parentkill:checkpoint:2")
        np.testing.assert_array_equal(u, ref.u)
        np.testing.assert_array_equal(v, ref.v)

    def test_kill_after_first_checkpoint(self, tmp_path):
        g = _graph()
        ref = swap_edges(g, 6, ParallelConfig(seed=42, threads=2))
        u, v = self._run_drill(tmp_path, "vectorized", "parentkill:checkpoint:0")
        np.testing.assert_array_equal(u, ref.u)
        np.testing.assert_array_equal(v, ref.v)


class TestReapStaleCheckpoints:
    def test_dead_tmp_removed_live_tmp_kept(self, tmp_path):
        dead = tmp_path / f".tmp-999999999-aa.npz"
        dead.write_bytes(b"half")
        live = tmp_path / f".tmp-{os.getpid()}-bb.npz"
        live.write_bytes(b"half")
        removed = reap_stale_checkpoints(tmp_path)
        assert str(dead) in removed
        assert not dead.exists() and live.exists()

    def test_done_store_of_dead_pid_reaped(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.save("done", arrays={"u": np.arange(3)})
        manifest_path = tmp_path / "run" / "snap-00000000.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["pid"] = 999999999
        manifest_path.write_text(json.dumps(manifest))
        removed = reap_stale_checkpoints(tmp_path)
        assert removed and not (tmp_path / "run").exists()

    def test_done_store_of_live_pid_kept(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.save("done")  # stamped with this (live) pid
        assert reap_stale_checkpoints(tmp_path) == []
        assert store.load_latest() is not None

    def test_mid_swap_store_of_dead_pid_kept(self, tmp_path):
        """A crashed run's store is the resume source — never reaped."""
        store = CheckpointStore(tmp_path / "run")
        store.save("swap", swap_round=3, arrays={"u": np.arange(3)})
        manifest_path = tmp_path / "run" / "snap-00000000.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["pid"] = 999999999
        manifest_path.write_text(json.dumps(manifest))
        assert reap_stale_checkpoints(tmp_path) == []
        assert store.load_latest().swap_round == 3

    def test_missing_root_is_noop(self, tmp_path):
        assert reap_stale_checkpoints(tmp_path / "nope") == []
