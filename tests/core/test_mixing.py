"""Tests for mixing diagnostics (Figures 1 and 4 machinery)."""

import numpy as np
import pytest

from repro.core.mixing import (
    average_attachment_matrix,
    chung_lu_attachment_curve,
    hub_attachment_curve,
    l1_probability_error,
)
from repro.datasets.synthetic import deterministic_powerlaw
from repro.graph.degree import DegreeDistribution
from repro.graph.edgelist import EdgeList


class TestL1Error:
    def test_identical_zero(self):
        a = np.random.default_rng(0).random((4, 4))
        assert l1_probability_error(a, a) == 0.0

    def test_known_value_unnormalized(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 0.5)
        assert l1_probability_error(a, b, normalized=False) == pytest.approx(2.0)

    def test_normalization(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 0.5)
        assert l1_probability_error(a, b) == pytest.approx(1.0)

    def test_symmetric_in_magnitude(self):
        rng = np.random.default_rng(1)
        a, b = rng.random((3, 3)), rng.random((3, 3))
        assert l1_probability_error(a, b, normalized=False) == pytest.approx(
            l1_probability_error(b, a, normalized=False)
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            l1_probability_error(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_zero_baseline(self):
        assert l1_probability_error(np.ones((2, 2)), np.zeros((2, 2))) == 4.0


class TestAttachmentCurves:
    def test_average_matrix(self, small_dist):
        g1 = EdgeList([0, 6], [6, 12], n=13)
        g2 = EdgeList([0], [6], n=13)
        avg = average_attachment_matrix([g1, g2], small_dist)
        one = average_attachment_matrix([g1], small_dist)
        two = average_attachment_matrix([g2], small_dist)
        np.testing.assert_allclose(avg, (one + two) / 2)

    def test_average_requires_graphs(self, small_dist):
        with pytest.raises(ValueError):
            average_attachment_matrix([], small_dist)

    def test_hub_curve_shape(self, small_dist):
        g = EdgeList([12, 12], [0, 6], n=13)
        degrees, curve = hub_attachment_curve([g], small_dist)
        np.testing.assert_array_equal(degrees, small_dist.degrees)
        assert len(curve) == small_dist.n_classes
        # hub-degree-1 cell: 1 edge of 6 possible pairs
        assert curve[0] == pytest.approx(1 / 6)

    def test_chung_lu_curve_formula(self, small_dist):
        degrees, curve = chung_lu_attachment_curve(small_dist)
        two_m = small_dist.stub_count()
        np.testing.assert_allclose(curve, small_dist.d_max * degrees / two_m)

    def test_chung_lu_curve_exceeds_one_on_skew(self):
        """Figure 1's point: the closed form is not a probability."""
        dist = deterministic_powerlaw(n=300, d_avg=4.0, d_max=120, n_classes=15)
        _, curve = chung_lu_attachment_curve(dist, clip=False)
        assert curve.max() > 1.0
        _, clipped = chung_lu_attachment_curve(dist, clip=True)
        assert clipped.max() <= 1.0

    def test_empirical_hub_curve_is_probability(self):
        """Unlike the closed form, measured probabilities stay in [0,1]."""
        from repro.bench.harness import uniform_reference
        from repro.parallel.runtime import ParallelConfig

        dist = deterministic_powerlaw(n=300, d_avg=4.0, d_max=120, n_classes=15)
        graphs = [
            uniform_reference(dist, ParallelConfig(seed=s), swap_iterations=8)
            for s in range(3)
        ]
        _, curve = hub_attachment_curve(graphs, dist)
        assert (curve >= 0).all() and (curve <= 1).all()
