"""Tests for the least-squares probability solver."""

import numpy as np
import pytest

from repro.core.probabilities import expected_degrees, generate_probabilities
from repro.core.solvers import solve_probabilities_lsq
from repro.datasets.synthetic import deterministic_powerlaw
from repro.graph.degree import DegreeDistribution


class TestSolveLSQ:
    def test_valid_probabilities(self, skewed_dist):
        res = solve_probabilities_lsq(skewed_dist)
        assert (res.P >= 0).all() and (res.P <= 1).all()
        np.testing.assert_allclose(res.P, res.P.T)

    def test_exact_on_mild_distribution(self, small_dist):
        res = solve_probabilities_lsq(small_dist)
        got = expected_degrees(res.P, small_dist)
        np.testing.assert_allclose(got, small_dist.degrees, rtol=1e-6)

    def test_exact_on_skewed_distribution(self, skewed_dist):
        """Where the heuristic leaves a residual, LSQ is exact."""
        res = solve_probabilities_lsq(skewed_dist)
        got = expected_degrees(res.P, skewed_dist)
        rel = np.abs(got - skewed_dist.degrees) / skewed_dist.degrees
        assert rel.max() < 1e-5

    def test_beats_heuristic_accuracy(self):
        dist = deterministic_powerlaw(800, 4.0, 150, 24)
        lsq = expected_degrees(solve_probabilities_lsq(dist).P, dist)
        heu = expected_degrees(generate_probabilities(dist).P, dist)
        lsq_err = (np.abs(lsq - dist.degrees) / dist.degrees).mean()
        heu_err = (np.abs(heu - dist.degrees) / dist.degrees).mean()
        assert lsq_err <= heu_err + 1e-9

    def test_empty(self):
        res = solve_probabilities_lsq(DegreeDistribution([], []))
        assert res.P.shape == (0, 0)

    def test_usable_by_edge_skip(self, skewed_dist, cfg):
        from repro.core.edge_skip import generate_edges

        res = solve_probabilities_lsq(skewed_dist)
        g = generate_edges(res.P, skewed_dist, cfg)
        assert g.is_simple()
        assert g.m == pytest.approx(skewed_dist.m, rel=0.15)

    def test_usable_by_generate_graph(self, skewed_dist, cfg):
        from repro.core.generate import generate_graph

        res = solve_probabilities_lsq(skewed_dist)
        g, report = generate_graph(
            skewed_dist, swap_iterations=2, config=cfg, probabilities=res
        )
        assert g.is_simple()
        assert report.probabilities is res

    def test_residual_reporting(self, skewed_dist):
        res = solve_probabilities_lsq(skewed_dist)
        assert (res.residual_stubs >= 0).all()
        # exact solve => essentially no residual
        assert res.residual_stubs.sum() < 0.01 * skewed_dist.stub_count()
