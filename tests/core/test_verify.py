"""Unit tests for the tiered integrity layer (repro.verify)."""

import numpy as np
import pytest

from repro.verify import (
    VERIFY_TIERS,
    CanaryError,
    ChecksumError,
    GraphIntegrityError,
    IntegrityError,
    chained_crc,
    check_tier,
    verify_graph,
    verify_table_registration,
)


class TestTypedFamily:
    def test_hierarchy(self):
        for exc in (GraphIntegrityError, ChecksumError, CanaryError):
            assert issubclass(exc, IntegrityError)
        assert issubclass(IntegrityError, RuntimeError)

    def test_check_tier(self):
        for tier in VERIFY_TIERS:
            assert check_tier(tier) == tier
        with pytest.raises(ValueError):
            check_tier("paranoid")

    def test_chained_crc(self):
        a = np.arange(10, dtype=np.int64)
        b = np.arange(10, 20, dtype=np.int64)
        whole = chained_crc(np.concatenate([a, b]))
        chained = chained_crc(b, chained_crc(a))
        assert whole == chained
        assert chained_crc(a) != chained_crc(b)


class TestVerifyGraph:
    def _ring(self, n=8):
        u = np.arange(n, dtype=np.int64)
        v = (u + 1) % n
        return u, v

    def test_clean_graph_passes_all_tiers(self):
        u, v = self._ring()
        deg = np.full(8, 2, dtype=np.int64)
        for tier in ("off", "cheap", "full"):
            verify_graph(u, v, 8, degrees=deg, tier=tier)

    def test_off_skips_everything(self):
        u = np.array([0, 0], dtype=np.int64)
        v = np.array([0, 99], dtype=np.int64)  # loop AND out of range
        verify_graph(u, v, 4, tier="off")

    def test_length_mismatch(self):
        with pytest.raises(GraphIntegrityError, match="length"):
            verify_graph(np.zeros(2, np.int64), np.zeros(3, np.int64), 4)

    def test_out_of_range(self):
        u, v = self._ring()
        v = v.copy()
        v[3] = 8  # == n
        with pytest.raises(GraphIntegrityError, match="out of range"):
            verify_graph(u, v, 8, tier="cheap")

    def test_self_loop(self):
        u, v = self._ring()
        v = v.copy()
        v[0] = u[0]
        with pytest.raises(GraphIntegrityError, match="self loop"):
            verify_graph(u, v, 8, tier="cheap")
        # tolerated when the space allows loops
        verify_graph(u, v, 8, tier="cheap", check_loops=False)

    def test_degree_mismatch_names_vertex(self):
        u, v = self._ring()
        deg = np.full(8, 2, dtype=np.int64)
        deg[5] = 3
        with pytest.raises(GraphIntegrityError, match="vertex 5"):
            verify_graph(u, v, 8, degrees=deg, tier="cheap")

    def test_duplicate_edge_full_tier_only(self):
        u = np.array([0, 1, 0], dtype=np.int64)
        v = np.array([1, 2, 1], dtype=np.int64)
        verify_graph(u, v, 4, tier="cheap")  # cheap does not sort
        with pytest.raises(GraphIntegrityError, match="duplicate"):
            verify_graph(u, v, 4, tier="full")
        verify_graph(u, v, 4, tier="full", check_duplicates=False)

    def test_duplicate_detected_across_orientation(self):
        u = np.array([0, 1], dtype=np.int64)
        v = np.array([1, 0], dtype=np.int64)
        with pytest.raises(GraphIntegrityError, match="duplicate"):
            verify_graph(u, v, 4, tier="full")

    def test_empty_graph(self):
        e = np.empty(0, dtype=np.int64)
        verify_graph(e, e, 0, tier="full")


class TestVerifyTable:
    def test_matches_after_registration(self):
        from repro.parallel.hashtable import ConcurrentEdgeHashTable, pack_edges

        u = np.arange(16, dtype=np.int64)
        v = u + 100
        keys = pack_edges(u, v)
        table = ConcurrentEdgeHashTable(64)
        table.test_and_set(keys)
        verify_table_registration(table, keys)

    def test_flipped_slot_detected(self):
        from repro.parallel.hashtable import (
            EMPTY_KEY,
            ConcurrentEdgeHashTable,
            pack_edges,
        )

        u = np.arange(16, dtype=np.int64)
        v = u + 100
        keys = pack_edges(u, v)
        table = ConcurrentEdgeHashTable(64)
        table.test_and_set(keys)
        live = np.flatnonzero(table._slots != EMPTY_KEY)
        table._slots[live[0]] ^= 1 << 17
        with pytest.raises(GraphIntegrityError, match="diverge"):
            verify_table_registration(table, keys)

    def test_missing_slot_detected(self):
        from repro.parallel.hashtable import (
            EMPTY_KEY,
            ConcurrentEdgeHashTable,
            pack_edges,
        )

        u = np.arange(16, dtype=np.int64)
        v = u + 100
        keys = pack_edges(u, v)
        table = ConcurrentEdgeHashTable(64)
        table.test_and_set(keys)
        live = np.flatnonzero(table._slots != EMPTY_KEY)
        table._slots[live[0]] = EMPTY_KEY
        with pytest.raises(GraphIntegrityError):
            verify_table_registration(table, keys)


class TestObsIntegration:
    def test_violation_emits_event_and_metric(self):
        from repro.obs import RunTrace

        u = np.array([0], dtype=np.int64)
        v = np.array([0], dtype=np.int64)
        with RunTrace() as tr:
            with pytest.raises(GraphIntegrityError):
                verify_graph(u, v, 2, tier="cheap")
            names = [e["name"] for e in tr.events()]
            assert "verify:violation" in names
            assert tr.metrics.counters.get("integrity.violations", 0) == 1
