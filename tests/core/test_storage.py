"""Out-of-core backing stores: planning, spill lifecycle, and durability.

What must hold:

- the storage planner (`select_store` / `plan_storage`) spills exactly
  when a positive memory budget cannot hold the working set, and never
  otherwise;
- mmap-backed arrays, appenders, and windowed kernels produce values
  identical to their RAM counterparts (the bitwise story's foundation);
- spill files follow the pid-stamped manifest discipline: created under
  the spill dir, reaped only when their owner is dead — never out from
  under a live run, even when the reaper races it from another process;
- a SIGKILLed mmap-backed durable run resumes bitwise-identically (the
  checkpoint raw payload mode round-trips mapped arrays);
- under an artificially tiny ``memory_budget_bytes`` the engine
  actually engages the spill path (property-tested over budgets).
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import storage
from repro.core.checkpoint import CheckpointStore
from repro.core.generate import generate_graph
from repro.core.storage import (
    ArrayAppender,
    MmapStore,
    RamStore,
    SPILL_PREFIX,
    copy_into,
    create_spill_file,
    generation_working_set_bytes,
    open_store,
    permute_into,
    reap_stale_spill,
    select_store,
    swap_working_set_bytes,
    total_bytes_mapped,
)
from repro.graph.degree import DegreeDistribution
from repro.parallel.autotune import StoragePlan, plan_storage
from repro.parallel.runtime import ParallelConfig

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@pytest.fixture(autouse=True)
def _isolated_spill_dir(tmp_path, monkeypatch):
    """Point the spill dir at a per-test directory (and verify cleanup)."""
    d = tmp_path / "spill"
    monkeypatch.setenv("REPRO_SPILL_DIR", str(d))
    yield d


def _dist():
    return DegreeDistribution(degrees=[1, 2, 3, 6], counts=[60, 40, 20, 4])


class TestSelection:
    def test_explicit_kinds_pass_through(self):
        assert select_store("ram", 10**9, 1) == "ram"
        assert select_store("mmap", 1, 10**9) == "mmap"

    def test_auto_spills_only_over_budget(self):
        assert select_store("auto", 100, 0) == "ram"  # no budget: unlimited
        assert select_store("auto", 100, 200) == "ram"
        assert select_store("auto", 201, 200) == "mmap"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="store must be one of"):
            select_store("disk", 1, 1)

    def test_config_validates_store_fields(self):
        with pytest.raises(ValueError, match="store"):
            ParallelConfig(store="floppy")
        with pytest.raises(ValueError, match="memory_budget_bytes"):
            ParallelConfig(memory_budget_bytes=-1)

    def test_plan_storage_auto_budget(self):
        cfg = ParallelConfig(store="auto", memory_budget_bytes=1 << 10)
        plan = plan_storage(cfg, working_set_bytes=1 << 20)
        assert isinstance(plan, StoragePlan)
        assert plan.store == "mmap" and plan.window > 0
        roomy = plan_storage(
            ParallelConfig(store="auto", memory_budget_bytes=1 << 30),
            working_set_bytes=1 << 20,
        )
        assert roomy.store == "ram" and roomy.window == 0

    def test_plan_storage_table_spill(self):
        cfg = ParallelConfig(store="auto", memory_budget_bytes=1 << 12)
        plan = plan_storage(
            cfg, working_set_bytes=1 << 11, table_bytes=1 << 13
        )
        assert plan.table_spill
        no_budget = plan_storage(
            ParallelConfig(store="mmap"), working_set_bytes=1 << 11,
            table_bytes=1 << 13,
        )
        assert not no_budget.table_spill  # spill needs a budget to exceed

    def test_working_set_estimates_scale_linearly(self):
        assert generation_working_set_bytes(10) == 10 * 16
        assert swap_working_set_bytes(10) == 10 * 25 * 2


class TestStores:
    def test_ram_store_plain_arrays(self):
        st_ = open_store("ram")
        a = st_.empty("x", 8, np.int64)
        assert isinstance(a, np.ndarray) and not isinstance(a, np.memmap)
        assert st_.bytes_mapped == 0

    def test_mmap_store_creates_and_releases_spill_files(self, _isolated_spill_dir):
        st_ = open_store("mmap")
        a = st_.empty("x", 100, np.int64)
        a[:] = np.arange(100)
        files = [f for f in os.listdir(_isolated_spill_dir) if f.endswith(".bin")]
        manifests = [f for f in os.listdir(_isolated_spill_dir) if f.endswith(".json")]
        assert len(files) == 1 and len(manifests) == 1
        assert st_.bytes_mapped == 800
        assert total_bytes_mapped() >= 800
        st_.release()
        # paths are gone, the mapping stays valid (deleted-but-open)
        assert [f for f in os.listdir(_isolated_spill_dir) if f.endswith(".bin")] == []
        assert np.array_equal(np.asarray(a), np.arange(100))
        with pytest.raises(RuntimeError, match="released"):
            st_.empty("y", 4, np.int64)

    def test_duplicate_names_rejected(self):
        st_ = open_store("mmap")
        st_.empty("x", 4, np.int64)
        with pytest.raises(ValueError, match="already holds"):
            st_.empty("x", 4, np.int64)
        st_.release()

    def test_open_store_rejects_auto(self):
        with pytest.raises(ValueError, match="resolve 'auto' first"):
            open_store("auto")

    @pytest.mark.parametrize("kind", ["ram", "mmap"])
    def test_appender_roundtrip(self, kind):
        st_ = open_store(kind)
        app = st_.appender("z", np.int64)
        app.append(np.arange(5))
        app.append([])
        app.append(np.arange(5, 12))
        out = app.finish()
        assert np.array_equal(np.asarray(out), np.arange(12))
        with pytest.raises(RuntimeError, match="finished"):
            app.append([1])
        st_.release()

    @pytest.mark.parametrize("kind", ["ram", "mmap"])
    def test_empty_appender_yields_empty_array(self, kind, _isolated_spill_dir):
        st_ = open_store(kind)
        out = st_.appender("z", np.int64).finish()
        assert len(out) == 0 and out.dtype == np.int64
        st_.release()
        leftovers = (
            [f for f in os.listdir(_isolated_spill_dir) if f.endswith(".bin")]
            if _isolated_spill_dir.is_dir() else []
        )
        assert leftovers == []

    def test_windowed_kernels_match_fancy_indexing(self):
        rng = np.random.default_rng(7)
        src = rng.integers(0, 1000, 257)
        order = rng.permutation(257)
        for window in (1, 16, 256, 257, 10_000):
            dst = np.empty_like(src)
            permute_into(dst, src, order, window)
            np.testing.assert_array_equal(dst, src[order])
            cp = np.empty_like(src)
            copy_into(cp, src, window)
            np.testing.assert_array_equal(cp, src)

    def test_windowed_kernels_validate_lengths(self):
        with pytest.raises(ValueError, match="length"):
            copy_into(np.empty(3), np.empty(4))
        with pytest.raises(ValueError, match="equal length"):
            permute_into(np.empty(3), np.empty(4), np.arange(4))


class TestReapStaleSpill:
    def _fake_dead_store(self, d, pid):
        """Spill file + manifest stamped with a (dead) pid."""
        path = os.path.join(d, f"{SPILL_PREFIX}{pid}-0-beef.bin")
        with open(path, "wb") as fh:
            fh.write(b"\0" * 8)
        manifest = os.path.join(d, f"{SPILL_PREFIX}{pid}-0.json")
        with open(manifest, "w") as fh:
            json.dump({"pid": pid, "files": [path]}, fh)
        return path, manifest

    def test_dead_owner_reaped_live_owner_kept(self, _isolated_spill_dir):
        d = str(_isolated_spill_dir)
        os.makedirs(d, exist_ok=True)
        dead_file, dead_manifest = self._fake_dead_store(d, 2**22 + 12345)
        live = MmapStore()
        arr = live.empty("keep", 16, np.int64)
        arr[:] = 7
        removed = reap_stale_spill()
        assert dead_file in removed
        assert not os.path.exists(dead_file)
        assert not os.path.exists(dead_manifest)
        # the live store's file and manifest survived
        assert os.path.exists(live.path_of("keep"))
        assert np.array_equal(np.asarray(arr), np.full(16, 7))
        live.release()

    def test_orphan_bin_without_manifest_reaped_by_name(self, _isolated_spill_dir):
        d = str(_isolated_spill_dir)
        os.makedirs(d, exist_ok=True)
        orphan = os.path.join(d, f"{SPILL_PREFIX}{2**22 + 999}-3-cafe.bin")
        open(orphan, "wb").close()
        foreign = os.path.join(d, "unrelated.bin")
        open(foreign, "wb").close()
        removed = reap_stale_spill()
        assert orphan in removed and not os.path.exists(orphan)
        assert os.path.exists(foreign)  # never touch foreign names

    def test_manifest_only_lists_spill_names(self, _isolated_spill_dir, tmp_path):
        """A (malicious or corrupt) manifest cannot direct deletions
        outside the spill naming scheme."""
        d = str(_isolated_spill_dir)
        os.makedirs(d, exist_ok=True)
        victim = tmp_path / "precious.txt"
        victim.write_text("data")
        manifest = os.path.join(d, f"{SPILL_PREFIX}{2**22 + 77}-0.json")
        with open(manifest, "w") as fh:
            json.dump({"pid": 2**22 + 77, "files": [str(victim)]}, fh)
        reap_stale_spill()
        assert victim.exists()
        assert not os.path.exists(manifest)

    def test_reap_races_live_run(self, _isolated_spill_dir):
        """A reaper running concurrently with a live out-of-core run must
        not collect that run's spill files; after the run dies (SIGKILL,
        so no cleanup), the same sweep collects them."""
        d = str(_isolated_spill_dir)
        script = textwrap.dedent(
            """
            import sys, time
            import numpy as np
            from repro.core.storage import MmapStore
            store = MmapStore()
            arr = store.empty("held", 64, np.int64)
            arr[:] = 1
            print("ready", flush=True)
            time.sleep(60)  # parent SIGKILLs us mid-hold
            """
        )
        env = dict(os.environ, PYTHONPATH=SRC, REPRO_SPILL_DIR=d)
        proc = subprocess.Popen(
            [sys.executable, "-c", script], env=env,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "ready"
            live_bins = [f for f in os.listdir(d) if f.endswith(".bin")]
            assert live_bins, "child created no spill file"
            # race: reap while the owner is alive — nothing may vanish
            assert reap_stale_spill() == []
            assert sorted(f for f in os.listdir(d) if f.endswith(".bin")) == sorted(live_bins)
        finally:
            proc.kill()
            proc.wait(timeout=30)
        # owner is gone without cleanup: now the sweep collects everything
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            reap_stale_spill()
            if not [f for f in os.listdir(d) if f.startswith(SPILL_PREFIX)]:
                break
            time.sleep(0.2)
        assert [f for f in os.listdir(d) if f.startswith(SPILL_PREFIX)] == []

    def test_shm_reap_stale_includes_spill_sweep(self, _isolated_spill_dir):
        from repro.parallel.shm import reap_stale

        d = str(_isolated_spill_dir)
        os.makedirs(d, exist_ok=True)
        orphan = os.path.join(d, f"{SPILL_PREFIX}{2**22 + 31}-0-dead.bin")
        open(orphan, "wb").close()
        removed = reap_stale()
        assert orphan in removed and not os.path.exists(orphan)


class TestCheckpointRawPayload:
    def test_big_arrays_use_raw_layout_and_roundtrip(self, tmp_path):
        st_ = CheckpointStore(tmp_path)
        big = np.arange(3_000_000, dtype=np.int64)
        st_.save("swap", swap_round=2, arrays={"u": big, "v": big[::-1].copy()},
                 fingerprint="fp")
        names = os.listdir(tmp_path)
        assert any(n.endswith(".raw") for n in names)
        assert not any(n.endswith(".npz") for n in names)
        snap = st_.load_latest("fp")
        assert isinstance(snap.arrays["u"], np.memmap)
        assert snap.arrays["u"].mode == "r"
        np.testing.assert_array_equal(np.asarray(snap.arrays["u"]), big)
        np.testing.assert_array_equal(np.asarray(snap.arrays["v"]), big[::-1])

    def test_mapped_arrays_force_raw_even_when_small(self, tmp_path):
        store = open_store("mmap")
        arr = store.empty("u", 32, np.int64)
        arr[:] = np.arange(32)
        st_ = CheckpointStore(tmp_path)
        st_.save("swap", arrays={"u": arr}, fingerprint="fp")
        assert any(n.endswith(".raw") for n in os.listdir(tmp_path))
        snap = st_.load_latest("fp")
        np.testing.assert_array_equal(np.asarray(snap.arrays["u"]), np.arange(32))
        store.release()

    def test_small_ram_arrays_keep_npz_layout(self, tmp_path):
        st_ = CheckpointStore(tmp_path)
        st_.save("swap", arrays={"u": np.arange(8)}, fingerprint="fp")
        assert any(n.endswith(".npz") for n in os.listdir(tmp_path))
        assert not any(n.endswith(".raw") for n in os.listdir(tmp_path))

    def test_truncated_raw_payload_falls_back(self, tmp_path):
        st_ = CheckpointStore(tmp_path)
        store = open_store("mmap")
        arr = store.empty("u", 64, np.int64)
        arr[:] = 1
        st_.save("swap", swap_round=1, arrays={"u": arr}, fingerprint="fp")
        arr[:] = 2
        st_.save("swap", swap_round=2, arrays={"u": arr}, fingerprint="fp")
        store.release()
        newest_raw = sorted(f for f in os.listdir(tmp_path) if f.endswith(".raw"))[-1]
        data = (tmp_path / newest_raw).read_bytes()
        (tmp_path / newest_raw).write_bytes(data[:-8])
        snap = st_.load_latest("fp")
        assert snap.swap_round == 1  # fell back past the torn snapshot
        np.testing.assert_array_equal(np.asarray(snap.arrays["u"]), np.full(64, 1))

    def test_prune_and_clear_remove_raw_files(self, tmp_path):
        st_ = CheckpointStore(tmp_path, keep=2)
        store = open_store("mmap")
        arr = store.empty("u", 16, np.int64)
        for round_ in range(4):
            arr[:] = round_
            st_.save("swap", swap_round=round_, arrays={"u": arr},
                     fingerprint="fp")
        raws = [f for f in os.listdir(tmp_path) if f.endswith(".raw")]
        assert len(raws) == 2  # pruned to keep=2
        st_.clear()
        assert [f for f in os.listdir(tmp_path) if f.startswith("snap-")] == []
        store.release()


DRILL_SCRIPT = textwrap.dedent(
    """
    import sys

    import numpy as np

    from repro.core.generate import generate_graph
    from repro.graph.degree import DegreeDistribution
    from repro.parallel.runtime import ParallelConfig
    from repro.parallel.shm import reap_stale

    ckpt_dir, out_path = sys.argv[1], sys.argv[2]
    reap_stale()  # collect artifacts stranded by the killed incarnation
    dist = DegreeDistribution(degrees=[1, 2, 3, 6], counts=[60, 40, 20, 4])
    cfg = ParallelConfig(
        seed=42, threads=2, backend="vectorized",
        store="mmap", memory_budget_bytes=1 << 12,
    )
    out, report = generate_graph(
        dist, swap_iterations=6, config=cfg,
        checkpoint_dir=ckpt_dir, checkpoint_every=1, resume_from=ckpt_dir,
    )
    np.savez(out_path, u=np.asarray(out.u), v=np.asarray(out.v))
    """
)


class TestMmapSigkillResume:
    """SIGKILL an mmap-backed durable run; the resume must match bit for bit."""

    def test_sigkilled_mmap_run_resumes_bitwise_identical(self, tmp_path,
                                                          _isolated_spill_dir):
        dist = _dist()
        ref, _ = generate_graph(
            dist, swap_iterations=6,
            config=ParallelConfig(seed=42, threads=2, backend="vectorized"),
        )
        env = dict(os.environ, PYTHONPATH=SRC,
                   REPRO_SPILL_DIR=str(_isolated_spill_dir))
        ckpt = tmp_path / "store"
        out_path = tmp_path / "out.npz"
        argv = [sys.executable, "-c", DRILL_SCRIPT, str(ckpt), str(out_path)]
        first = subprocess.run(
            argv, env=dict(env, REPRO_FAULTS="parentkill:checkpoint:2"),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, timeout=120,
        )
        assert first.returncode == -signal.SIGKILL, (
            f"driver survived the parentkill drill: rc={first.returncode}")
        assert not out_path.exists()
        assert any(f.endswith(".json") for f in os.listdir(ckpt)), (
            "no durable snapshot before the kill")
        second = subprocess.run(argv, env=env, capture_output=True, timeout=120)
        assert second.returncode == 0, second.stderr.decode()
        with np.load(out_path) as data:
            np.testing.assert_array_equal(data["u"], np.asarray(ref.u))
            np.testing.assert_array_equal(data["v"], np.asarray(ref.v))
        # the killed incarnation's spill files are reapable afterwards
        reap_stale_spill()
        assert [f for f in os.listdir(_isolated_spill_dir)
                if f.startswith(SPILL_PREFIX)] == []


class TestTinyBudgetProperty:
    @settings(max_examples=10, deadline=None)
    @given(budget=st.integers(min_value=1, max_value=1 << 12),
           seed=st.integers(min_value=0, max_value=2**20))
    def test_tiny_budget_engages_spill_and_preserves_output(self, budget, seed):
        """Any positive budget below the working set must spill — and the
        spilled run must equal the unconstrained RAM run bit for bit."""
        from repro.obs import RunTrace

        dist = _dist()
        ram_cfg = ParallelConfig(threads=2, backend="vectorized", seed=seed)
        ref, _ = generate_graph(dist, swap_iterations=1, config=ram_cfg)
        assert swap_working_set_bytes(ref.m) > budget  # premise of the test
        tiny_cfg = ParallelConfig(
            threads=2, backend="vectorized", seed=seed,
            store="auto", memory_budget_bytes=budget,
        )
        with RunTrace() as tr:
            out, _ = generate_graph(dist, swap_iterations=1, config=tiny_cfg)
            hist = tr.metrics.histograms.get("store.bytes_mapped")
            peak = float(hist.max) if hist is not None and hist.count else 0.0
        assert peak > 0, "spill did not engage under a tiny budget"
        np.testing.assert_array_equal(np.asarray(out.u), np.asarray(ref.u))
        np.testing.assert_array_equal(np.asarray(out.v), np.asarray(ref.v))
