"""Tests for the Table I dataset catalog."""

import numpy as np
import pytest

from repro.datasets.catalog import SPECS, DatasetSpec, available, load


class TestCatalog:
    def test_all_eight_datasets(self):
        assert available() == [
            "Meso", "as20", "WikiTalk", "DBPedia",
            "LiveJournal", "Friendster", "Twitter", "uk-2005",
        ]

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load("Orkut")

    @pytest.mark.parametrize("name", ["Meso", "as20"])
    def test_full_scale_skewed_instances(self, name):
        spec = SPECS[name]
        dist = load(name, scale=1.0)
        assert dist.n == spec.n
        assert dist.is_graphical()
        assert dist.d_avg == pytest.approx(spec.d_avg, rel=0.02)

    @pytest.mark.parametrize("name", list(SPECS))
    def test_default_scale_tractable_and_graphical(self, name):
        dist = load(name)
        assert dist.is_graphical()
        assert dist.n <= 50_000
        assert dist.d_avg == pytest.approx(SPECS[name].d_avg, rel=0.02)

    @pytest.mark.parametrize("name", list(SPECS))
    def test_average_degree_scale_invariant(self, name):
        """Scaling preserves density (m scales with n)."""
        spec = SPECS[name]
        dist = spec.synthesize(min(1.0, spec.default_scale * 2))
        assert dist.d_avg == pytest.approx(spec.d_avg, rel=0.03)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            SPECS["Meso"].scaled_shape(0.0)
        with pytest.raises(ValueError):
            SPECS["Meso"].scaled_shape(1.5)

    def test_skewed_flags(self):
        assert SPECS["Meso"].skewed and SPECS["as20"].skewed
        assert not SPECS["LiveJournal"].skewed

    def test_d_avg_property(self):
        spec = SPECS["LiveJournal"]
        assert spec.d_avg == pytest.approx(2 * spec.m / spec.n)

    def test_scaled_shape_monotone(self):
        """Bigger scale => at least as many vertices and hub degree."""
        spec = SPECS["WikiTalk"]
        n1, d1, c1 = spec.scaled_shape(0.005)
        n2, d2, c2 = spec.scaled_shape(0.05)
        assert n2 > n1 and d2 >= d1 and c2 >= c1

    def test_skew_regime_preserved_at_default_scale(self):
        """The quality-study twins keep d_max² > 2m (the CL-breaking skew)."""
        for name in ("Meso", "as20", "WikiTalk", "DBPedia"):
            dist = load(name)
            assert dist.d_max**2 > dist.stub_count(), name
