"""Tests for synthetic power-law distributions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.synthetic import (
    as733_like,
    deterministic_powerlaw,
    fix_parity,
    sampled_powerlaw,
)


class TestFixParity:
    def test_even_unchanged(self):
        d, c = fix_parity(np.asarray([1, 2]), np.asarray([2, 2]))
        np.testing.assert_array_equal(d, [1, 2])
        np.testing.assert_array_equal(c, [2, 2])

    def test_odd_repaired(self):
        d, c = fix_parity(np.asarray([1, 2]), np.asarray([1, 2]))
        assert int((d * c).sum()) % 2 == 0
        assert c.sum() == 3  # vertex count preserved

    def test_creates_new_class_if_needed(self):
        d, c = fix_parity(np.asarray([3]), np.asarray([1]))
        assert int((d * c).sum()) % 2 == 0
        assert c.sum() == 1

    def test_degree_one_moves_up(self):
        d, c = fix_parity(np.asarray([1]), np.asarray([3]))
        assert int((d * c).sum()) % 2 == 0
        assert 2 in d


class TestDeterministicPowerlaw:
    def test_hits_n_dmax(self):
        dist = deterministic_powerlaw(n=1000, d_avg=4.0, d_max=80, n_classes=15)
        assert dist.n == 1000
        assert dist.d_max == 80
        assert dist.is_graphical()

    def test_davg_close(self):
        dist = deterministic_powerlaw(n=2000, d_avg=6.0, d_max=100, n_classes=20)
        assert dist.d_avg == pytest.approx(6.0, rel=0.05)

    def test_deterministic(self):
        a = deterministic_powerlaw(500, 4.0, 50, 12)
        b = deterministic_powerlaw(500, 4.0, 50, 12)
        assert a == b

    def test_skew_shape(self):
        """Counts decrease with degree (power-law body)."""
        dist = deterministic_powerlaw(2000, 3.5, 100, 20)
        assert dist.counts[0] > dist.counts[-1]
        assert dist.counts[-1] >= 1

    def test_dmax_too_large(self):
        with pytest.raises(ValueError):
            deterministic_powerlaw(100, 3.0, 100, 5)

    def test_n_smaller_than_classes(self):
        with pytest.raises(ValueError):
            deterministic_powerlaw(5, 2.0, 4, 10)

    def test_extreme_hub_regime_still_graphical(self):
        """d_max near n (Twitter-twin regime) must stay realizable."""
        dist = deterministic_powerlaw(n=1000, d_avg=50.0, d_max=999, n_classes=100)
        assert dist.is_graphical()
        assert dist.d_max >= 500  # the repair loop may shave, but not kill, the hub

    @given(
        st.integers(200, 2000),
        st.floats(2.0, 12.0),
        st.integers(20, 150),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_always_graphical(self, n, d_avg, d_max):
        d_max = min(d_max, n - 1)
        classes = min(12, d_max - 1)
        dist = deterministic_powerlaw(n, d_avg, d_max, classes)
        assert dist.is_graphical()
        assert dist.n == n


class TestSampledPowerlaw:
    def test_n_vertices(self):
        dist = sampled_powerlaw(300, 2.5, 1, 40, seed=0)
        assert dist.n == 300

    def test_even_sum(self):
        for s in range(5):
            dist = sampled_powerlaw(101, 2.0, 1, 30, seed=s)
            assert dist.stub_count() % 2 == 0

    def test_bounds(self):
        dist = sampled_powerlaw(500, 2.5, 3, 25, seed=1)
        assert dist.degrees[0] >= 2  # parity fix may shift one vertex by 1
        assert dist.d_max <= 26

    def test_reproducible(self):
        assert sampled_powerlaw(100, 2.0, 1, 20, seed=4) == sampled_powerlaw(
            100, 2.0, 1, 20, seed=4
        )

    def test_heavier_tail_with_smaller_gamma(self):
        shallow = sampled_powerlaw(2000, 1.5, 1, 100, seed=2)
        steep = sampled_powerlaw(2000, 3.5, 1, 100, seed=2)
        assert shallow.d_avg > steep.d_avg

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sampled_powerlaw(0, 2.0)
        with pytest.raises(ValueError):
            sampled_powerlaw(10, 2.0, d_min=0)


class TestAS733Like:
    def test_shape(self):
        dist = as733_like()
        assert dist.n == 6500
        assert dist.d_max == 1500
        assert dist.is_graphical()
        # the skew that breaks Chung-Lu: d_max^2 > 2m
        assert dist.d_max**2 > dist.stub_count()


class TestOtherFamilies:
    def test_regular(self):
        from repro.datasets.synthetic import regular_distribution

        d = regular_distribution(10, 3)
        assert d.n_classes == 1 and d.n == 10 and d.d_max == 3
        assert d.is_graphical()

    def test_regular_validation(self):
        from repro.datasets.synthetic import regular_distribution

        with pytest.raises(ValueError):
            regular_distribution(5, 5)
        with pytest.raises(ValueError):
            regular_distribution(5, 3)  # odd stub total

    def test_lognormal(self):
        from repro.datasets.synthetic import lognormal_distribution

        d = lognormal_distribution(500, seed=1)
        assert d.n == 500
        assert d.stub_count() % 2 == 0
        assert d.degrees.min() >= 1

    def test_lognormal_dmax_cap(self):
        from repro.datasets.synthetic import lognormal_distribution

        d = lognormal_distribution(500, mu=2.5, sigma=1.0, d_max=30, seed=2)
        assert d.d_max <= 31  # parity fix may add one

    def test_bimodal(self):
        from repro.datasets.synthetic import bimodal_distribution

        d = bimodal_distribution(100, low=2, high=10, high_fraction=0.2)
        assert d.n == 100
        assert d.n_classes in (2, 3)  # parity fix may split a class
        assert d.is_graphical()

    def test_bimodal_validation(self):
        from repro.datasets.synthetic import bimodal_distribution

        with pytest.raises(ValueError):
            bimodal_distribution(100, high_fraction=0.0)
        with pytest.raises(ValueError):
            bimodal_distribution(100, low=20, high=10)

    @pytest.mark.parametrize("family", ["regular", "lognormal", "bimodal"])
    def test_pipeline_handles_every_family(self, family):
        """The generator must not be power-law-specific."""
        from repro import ParallelConfig, generate_graph
        from repro.datasets.synthetic import (
            bimodal_distribution,
            lognormal_distribution,
            regular_distribution,
        )

        dist = {
            "regular": lambda: regular_distribution(60, 4),
            "lognormal": lambda: lognormal_distribution(200, seed=3),
            "bimodal": lambda: bimodal_distribution(150, low=2, high=12),
        }[family]()
        g, _ = generate_graph(dist, swap_iterations=2, config=ParallelConfig(seed=4))
        assert g.is_simple()
        assert g.m == pytest.approx(dist.m, rel=0.25)
