"""Byte-order marks and mixed line endings in text edge lists.

Files saved by Windows editors arrive with a UTF-8 BOM and CRLF
endings (sometimes mixed with LF after hand edits).  The loaders must
consume both without corrupting the first token — and, crucially,
without shifting the 1-based line numbers that
:class:`EdgeListFormatError` reports.
"""

import numpy as np
import pytest

from repro.graph.edgelist import EdgeListFormatError
from repro.graph.io import (
    load_degree_distribution,
    load_edge_list,
    parse_edge_list_text,
)

BOM = "\ufeff"


class TestBomFiles:
    def test_edge_list_with_bom(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_bytes((BOM + "0 1\n1 2\n2 0\n").encode("utf-8"))
        g = load_edge_list(path)
        assert g.m == 3
        np.testing.assert_array_equal(g.u, [0, 1, 2])

    def test_bom_before_header(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_bytes((BOM + "# n=9 m=2\n0 1\n1 2\n").encode("utf-8"))
        g = load_edge_list(path)
        assert g.n == 9
        assert g.m == 2

    def test_degree_distribution_with_bom(self, tmp_path):
        path = tmp_path / "d.txt"
        path.write_bytes((BOM + "1 4\n2 2\n").encode("utf-8"))
        dist = load_degree_distribution(path)
        assert dist.n == 6

    def test_mixed_crlf_lf(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_bytes(b"0 1\r\n1 2\n2 3\r\n3 0\n")
        g = load_edge_list(path)
        assert g.m == 4
        np.testing.assert_array_equal(g.v, [1, 2, 3, 0])

    def test_bom_and_crlf_together(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_bytes((BOM + "# n=5\r\n0 1\r\n1 2\n").encode("utf-8"))
        g = load_edge_list(path)
        assert g.n == 5
        assert g.m == 2

    def test_line_numbers_survive_bom_and_crlf(self, tmp_path):
        """A malformed line 3 reports line 3, BOM and CRLF notwithstanding."""
        path = tmp_path / "g.txt"
        path.write_bytes((BOM + "0 1\r\n1 2\r\nbad row here\r\n").encode("utf-8"))
        with pytest.raises(EdgeListFormatError) as exc:
            load_edge_list(path)
        assert exc.value.line == 3
        assert "3" in str(exc.value)

    def test_non_integer_first_token_is_not_bom_artifact(self, tmp_path):
        """Without BOM handling the first token would parse as '\\ufeff0'."""
        path = tmp_path / "g.txt"
        path.write_bytes((BOM + "0 1\n").encode("utf-8"))
        g = load_edge_list(path)
        assert int(g.u[0]) == 0


class TestBomInMemory:
    def test_parse_text_with_bom(self):
        g = parse_edge_list_text(BOM + "0 1\n1 2\n")
        assert g.m == 2

    def test_parse_text_bom_header(self):
        g = parse_edge_list_text(BOM + "# n=7\n0 1\n")
        assert g.n == 7

    def test_parse_text_mixed_endings_line_numbers(self):
        with pytest.raises(EdgeListFormatError) as exc:
            parse_edge_list_text(BOM + "0 1\r\n1 2\nx y\r\n")
        assert exc.value.line == 3

    def test_parse_text_malformed_header_is_line_one(self):
        with pytest.raises(EdgeListFormatError) as exc:
            parse_edge_list_text(BOM + "# n=lots\n0 1\n")
        assert exc.value.line == 1
