"""Tests for NetworkX conversion."""

import numpy as np
import pytest

from repro.graph.convert import from_networkx, to_networkx
from repro.graph.edgelist import EdgeList


class TestToNetworkx:
    def test_roundtrip_simple(self, ring_graph):
        g = to_networkx(ring_graph)
        assert g.number_of_nodes() == 10
        assert g.number_of_edges() == 10
        back = from_networkx(g)
        assert back.same_graph(ring_graph)

    def test_isolated_vertices_preserved(self):
        g = to_networkx(EdgeList([0], [1], n=5))
        assert g.number_of_nodes() == 5

    def test_multigraph_keeps_duplicates(self):
        el = EdgeList([0, 0, 1], [1, 1, 1])
        assert to_networkx(el, multigraph=True).number_of_edges() == 3
        assert to_networkx(el, multigraph=False).number_of_edges() == 2


class TestFromNetworkx:
    def test_empty(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(3))
        el = from_networkx(g)
        assert el.n == 3 and el.m == 0

    def test_relabels_non_contiguous(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(10, 20)
        g.add_edge(20, 30)
        el = from_networkx(g)
        assert el.n == 3 and el.m == 2
        deg = el.degree_sequence()
        assert sorted(deg.tolist()) == [1, 1, 2]

    def test_degree_sequences_agree(self):
        import networkx as nx

        g = nx.karate_club_graph()
        el = from_networkx(g)
        theirs = sorted(d for _, d in g.degree())
        assert sorted(el.degree_sequence().tolist()) == theirs
