"""Tests for Shiloach–Vishkin connected components."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.components import component_sizes, connected_components, is_connected
from repro.graph.edgelist import EdgeList


class TestConnectedComponents:
    def test_ring_single_component(self, ring_graph):
        comp = connected_components(ring_graph)
        assert (comp == 0).all()
        assert is_connected(ring_graph)

    def test_two_components(self):
        g = EdgeList([0, 1, 3, 4], [1, 2, 4, 5], n=6)
        comp = connected_components(g)
        assert comp[0] == comp[1] == comp[2]
        assert comp[3] == comp[4] == comp[5]
        assert comp[0] != comp[3]

    def test_isolated_vertices(self):
        g = EdgeList([0], [1], n=4)
        sizes = component_sizes(g)
        assert sorted(sizes.tolist()) == [1, 1, 2]
        assert not is_connected(g)

    def test_empty_graph(self):
        g = EdgeList([], [], n=3)
        assert len(component_sizes(g)) == 3

    def test_zero_vertices(self):
        g = EdgeList([], [], n=0)
        assert is_connected(g)
        assert component_sizes(g).shape == (0,)

    def test_labels_dense_and_ordered(self):
        g = EdgeList([4, 0], [5, 1], n=6)
        comp = connected_components(g)
        # first-seen ordering: vertex 0's component is id 0
        assert comp[0] == 0
        assert set(comp.tolist()) == {0, 1, 2, 3}

    def test_star(self):
        g = EdgeList([0, 0, 0], [1, 2, 3])
        assert is_connected(g)

    def test_path_long(self):
        n = 1000
        u = np.arange(n - 1)
        g = EdgeList(u, u + 1, n)
        assert is_connected(g)

    def test_matches_networkx(self):
        import networkx as nx

        from repro.graph.convert import to_networkx

        rng = np.random.default_rng(0)
        for seed in range(6):
            rng = np.random.default_rng(seed)
            m = int(rng.integers(5, 60))
            u = rng.integers(0, 50, m)
            v = rng.integers(0, 50, m)
            g = EdgeList(u, v, 50)
            ours = len(component_sizes(g))
            theirs = nx.number_connected_components(to_networkx(g))
            assert ours == theirs

    @given(st.integers(0, 2**31), st.integers(1, 80), st.integers(0, 150))
    @settings(max_examples=40, deadline=None)
    def test_property_component_invariants(self, seed, n, m):
        rng = np.random.default_rng(seed)
        u = rng.integers(0, n, m)
        v = rng.integers(0, n, m)
        g = EdgeList(u, v, n)
        comp = connected_components(g)
        assert len(comp) == n
        # every edge joins same-component endpoints
        if m:
            assert (comp[g.u] == comp[g.v]).all()
        assert component_sizes(g).sum() == n

    def test_self_loops_ok(self):
        g = EdgeList([0, 1], [0, 2], n=3)
        assert len(component_sizes(g)) == 2
