"""Tests for DegreeDistribution and Erdős–Gallai graphicality."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.degree import (
    DegreeDistribution,
    NonGraphicalError,
    graphicality_violation,
    is_graphical,
)
from repro.graph.edgelist import EdgeList


class TestConstruction:
    def test_basic(self, small_dist):
        assert small_dist.n_classes == 4
        assert small_dist.n == 13
        assert small_dist.stub_count() == 6 + 8 + 6 + 6
        assert small_dist.m == 13

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            DegreeDistribution([2, 1], [2, 2])

    def test_rejects_duplicate_degrees(self):
        with pytest.raises(ValueError):
            DegreeDistribution([2, 2], [1, 1])

    def test_rejects_zero_degree(self):
        with pytest.raises(ValueError):
            DegreeDistribution([0, 1], [2, 2])

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            DegreeDistribution([1, 2], [0, 2])

    def test_rejects_odd_stub_sum(self):
        with pytest.raises(ValueError, match="even"):
            DegreeDistribution([1, 2], [1, 2])

    def test_empty(self):
        d = DegreeDistribution([], [])
        assert d.n == 0 and d.m == 0 and d.d_max == 0 and d.d_avg == 0.0

    def test_from_degree_sequence(self):
        d = DegreeDistribution.from_degree_sequence([3, 1, 1, 3, 0, 0])
        np.testing.assert_array_equal(d.degrees, [1, 3])
        np.testing.assert_array_equal(d.counts, [2, 2])

    def test_from_graph(self, ring_graph):
        d = DegreeDistribution.from_graph(ring_graph)
        np.testing.assert_array_equal(d.degrees, [2])
        np.testing.assert_array_equal(d.counts, [10])

    def test_equality_and_hash(self, small_dist):
        other = DegreeDistribution([1, 2, 3, 6], [6, 4, 2, 1])
        assert small_dist == other
        assert hash(small_dist) == hash(other)
        assert small_dist != DegreeDistribution([1], [2])

    def test_repr(self, small_dist):
        assert "classes=4" in repr(small_dist)


class TestDerived:
    def test_d_max_d_avg(self, small_dist):
        assert small_dist.d_max == 6
        assert small_dist.d_avg == pytest.approx(26 / 13)

    def test_expand_sorted_ascending(self, small_dist):
        seq = small_dist.expand()
        assert len(seq) == 13
        assert (np.diff(seq) >= 0).all()
        np.testing.assert_array_equal(np.unique(seq), small_dist.degrees)

    def test_class_offsets(self, small_dist):
        np.testing.assert_array_equal(small_dist.class_offsets(), [0, 6, 10, 12, 13])

    def test_class_offsets_with_config(self, small_dist, cfg):
        np.testing.assert_array_equal(
            small_dist.class_offsets(cfg), small_dist.class_offsets()
        )

    def test_class_of_degree(self, small_dist):
        np.testing.assert_array_equal(
            small_dist.class_of_degree(np.asarray([1, 6, 4, 2])), [0, 3, -1, 1]
        )

    def test_roundtrip_through_expand(self, skewed_dist):
        d2 = DegreeDistribution.from_degree_sequence(skewed_dist.expand())
        assert d2 == skewed_dist


class TestErdosGallai:
    def test_empty_graphical(self):
        assert is_graphical([])

    def test_regular(self):
        assert is_graphical([2, 2, 2])

    def test_complete_graph(self):
        assert is_graphical([4] * 5)

    def test_odd_sum_not_graphical(self):
        assert not is_graphical([1, 1, 1])

    def test_degree_exceeds_n(self):
        assert not is_graphical([3, 1, 1, 1][0:3])  # [3,1,1]: d=3 >= n=3

    def test_star(self):
        assert is_graphical([3, 1, 1, 1])

    def test_classic_non_graphical(self):
        # even sum but fails EG: three vertices want degree 3, only 1 partner-slot
        assert not is_graphical([3, 3, 1, 1])

    def test_negative(self):
        assert not is_graphical([-2, 2])

    @given(st.lists(st.integers(0, 12), min_size=1, max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_property_matches_networkx(self, seq):
        import networkx as nx

        assert is_graphical(seq) == nx.is_graphical(seq, method="eg")

    @given(st.integers(2, 40), st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_property_real_graphs_are_graphical(self, n, seed):
        """Degree sequences harvested from actual graphs must pass."""
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, n * 2))
        u = rng.integers(0, n, m)
        v = rng.integers(0, n, m)
        keep = u != v
        g = EdgeList(u[keep], v[keep], n).simplify()
        assert is_graphical(g.degree_sequence())

    def test_dist_is_graphical_method(self, small_dist):
        assert small_dist.is_graphical()

    def test_dist_not_graphical(self):
        d = DegreeDistribution([1, 3], [1, 3])  # [3,3,3,1]
        assert not d.is_graphical()


class TestGraphicalityViolation:
    """graphicality_violation names the *first* violated condition."""

    def test_graphical_returns_none(self):
        assert graphicality_violation([2, 2, 2]) is None
        assert graphicality_violation([]) is None

    def test_negative_degree_named(self):
        msg = graphicality_violation([2, -2])
        assert msg is not None and "negative degree" in msg

    def test_odd_sum_named(self):
        msg = graphicality_violation([1, 1, 1])
        assert msg is not None and "odd" in msg

    def test_degree_exceeds_vertex_count_named(self):
        msg = graphicality_violation([3, 3])
        assert msg is not None and "vertex count" in msg

    def test_erdos_gallai_prefix_named(self):
        msg = graphicality_violation([3, 3, 1, 1])
        assert msg is not None and "k=" in msg and "bound" in msg

    def test_first_violated_prefix_is_reported(self):
        msg = graphicality_violation([3, 3, 1, 1])
        assert msg is not None
        k = int(msg.split("k=")[1].split()[0])
        seq = np.sort(np.asarray([3, 3, 1, 1]))[::-1]
        for i in range(1, k):
            lhs = int(seq[:i].sum())
            rhs = i * (i - 1) + int(np.minimum(seq[i:], i).sum())
            assert lhs <= rhs  # every earlier prefix holds

    def test_is_graphical_agrees_with_violation(self):
        for seq in ([2, 2, 2], [3, 3, 1, 1], [1, 1, 1], [5, 1], [-1, 1]):
            assert is_graphical(seq) == (graphicality_violation(seq) is None)

    def test_generate_rejects_non_graphical(self):
        from repro.core.generate import generate_graph
        from repro.parallel.runtime import ParallelConfig

        with pytest.raises(NonGraphicalError) as exc:
            generate_graph(
                DegreeDistribution([3], [2]), config=ParallelConfig(seed=1)
            )
        assert "not graphical" in str(exc.value)
