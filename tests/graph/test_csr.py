"""Tests for CSR adjacency and motif counting kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.csr import (
    CSRAdjacency,
    clustering_coefficients,
    transitivity,
    triangle_count,
    triangles_per_vertex,
    wedge_count,
)
from repro.graph.edgelist import EdgeList


def random_simple(n, m, seed):
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, 3 * m)
    v = rng.integers(0, n, 3 * m)
    keep = u != v
    return EdgeList(u[keep], v[keep], n).simplify()


class TestCSRAdjacency:
    def test_neighbors_sorted_and_complete(self, ring_graph):
        adj = CSRAdjacency(ring_graph)
        for v in range(ring_graph.n):
            nbrs = adj.neighbors(v)
            assert len(nbrs) == 2
            assert (np.diff(nbrs) > 0).all()
            assert set(nbrs.tolist()) == {(v - 1) % 10, (v + 1) % 10}

    def test_degrees(self, ring_graph):
        np.testing.assert_array_equal(
            CSRAdjacency(ring_graph).degrees(), ring_graph.degree_sequence()
        )

    def test_rejects_non_simple(self):
        with pytest.raises(ValueError):
            CSRAdjacency(EdgeList([0, 0], [1, 1]))

    def test_has_edge(self):
        g = EdgeList([0, 1], [1, 2], n=4)
        adj = CSRAdjacency(g)
        assert adj.has_edge(0, 1) and adj.has_edge(1, 0)
        assert not adj.has_edge(0, 2)
        assert not adj.has_edge(3, 0)

    def test_isolated_vertex(self):
        adj = CSRAdjacency(EdgeList([0], [1], n=3))
        assert adj.degree(2) == 0
        assert adj.neighbors(2).shape == (0,)

    @given(st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_round_trip(self, seed):
        g = random_simple(30, 80, seed)
        adj = CSRAdjacency(g)
        np.testing.assert_array_equal(adj.degrees(), g.degree_sequence())
        # every edge appears in both adjacency lists
        for a, b in zip(g.u.tolist()[:20], g.v.tolist()[:20]):
            assert adj.has_edge(a, b) and adj.has_edge(b, a)


class TestTriangles:
    def test_triangle_graph(self):
        g = EdgeList([0, 1, 2], [1, 2, 0])
        assert triangle_count(g) == 1
        np.testing.assert_array_equal(triangles_per_vertex(g), [1, 1, 1])

    def test_triangle_free(self, ring_graph):
        assert triangle_count(ring_graph) == 0

    def test_complete_graph(self):
        iu, iv = np.triu_indices(6, k=1)
        g = EdgeList(iu, iv)
        assert triangle_count(g) == 20  # C(6,3)

    def test_matches_networkx(self):
        import networkx as nx

        from repro.graph.convert import to_networkx

        for seed in range(5):
            g = random_simple(40, 150, seed)
            theirs = sum(nx.triangles(to_networkx(g)).values()) // 3
            assert triangle_count(g) == theirs

    def test_per_vertex_matches_networkx(self):
        import networkx as nx

        from repro.graph.convert import to_networkx

        g = random_simple(40, 150, 11)
        theirs = nx.triangles(to_networkx(g))
        ours = triangles_per_vertex(g)
        assert all(ours[i] == theirs[i] for i in range(g.n))

    def test_empty(self):
        assert triangle_count(EdgeList([], [], n=4)) == 0


class TestClustering:
    def test_wedges(self):
        g = EdgeList([0, 0], [1, 2], n=3)  # one wedge at vertex 0
        assert wedge_count(g) == 1

    def test_transitivity_triangle(self):
        g = EdgeList([0, 1, 2], [1, 2, 0])
        assert transitivity(g) == pytest.approx(1.0)

    def test_transitivity_matches_networkx(self):
        import networkx as nx

        from repro.graph.convert import to_networkx

        g = random_simple(50, 200, 3)
        assert transitivity(g) == pytest.approx(nx.transitivity(to_networkx(g)))

    def test_clustering_matches_networkx(self):
        import networkx as nx

        from repro.graph.convert import to_networkx

        g = random_simple(50, 200, 4)
        theirs = nx.clustering(to_networkx(g))
        ours = clustering_coefficients(g)
        np.testing.assert_allclose(ours, [theirs[i] for i in range(g.n)], atol=1e-12)

    def test_empty_transitivity(self):
        assert transitivity(EdgeList([], [], n=3)) == 0.0
