"""Tests for graph statistics (Gini, errors, attachment matrices)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.degree import DegreeDistribution
from repro.graph.edgelist import EdgeList
from repro.graph.stats import (
    attachment_probability_matrix,
    degree_assortativity,
    degree_class_edge_counts,
    degree_error_by_degree,
    gini_coefficient,
    percent_error,
    possible_pairs_matrix,
    vertex_classes,
)


class TestGini:
    def test_perfect_equality(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_total_inequality_limit(self):
        # one holder of all mass among many: G -> 1 - 1/n
        n = 1000
        values = np.zeros(n)
        values[0] = 100
        assert gini_coefficient(values) == pytest.approx(1 - 1 / n)

    def test_known_value(self):
        # [1, 3]: mean abs diff = 1; G = 1/(2*2) ... classic result 0.25
        assert gini_coefficient([1, 3]) == pytest.approx(0.25)

    def test_empty(self):
        assert gini_coefficient([]) == 0.0

    def test_all_zero(self):
        assert gini_coefficient([0, 0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1, 2])

    def test_scale_invariant(self):
        a = [1, 2, 3, 10]
        assert gini_coefficient(a) == pytest.approx(gini_coefficient(np.asarray(a) * 7.5))

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
    def test_property_bounds(self, values):
        g = gini_coefficient(values)
        assert -1e-9 <= g < 1.0

    def test_skew_orders_distributions(self):
        flat = gini_coefficient([4] * 100)
        skewed = gini_coefficient([1] * 99 + [500])
        assert skewed > flat


class TestPercentError:
    def test_basic(self):
        assert percent_error(110, 100) == pytest.approx(10.0)

    def test_signed(self):
        assert percent_error(90, 100) == pytest.approx(-10.0)

    def test_zero_expected_zero_actual(self):
        assert percent_error(0, 0) == 0.0

    def test_zero_expected_nonzero_is_nan(self):
        # undefined, not infinite: NaN propagates cleanly through
        # nan-aware aggregations instead of poisoning means with inf
        assert np.isnan(percent_error(1, 0))

    def test_zero_expected_negative_actual_is_nan(self):
        assert np.isnan(percent_error(-1, 0))


class TestDegreeErrorByDegree:
    def test_perfect_match(self, small_dist):
        degrees, err = degree_error_by_degree(small_dist, small_dist.expand())
        np.testing.assert_array_equal(degrees, small_dist.degrees)
        np.testing.assert_allclose(err, 0.0)

    def test_missing_class(self, small_dist):
        seq = small_dist.expand()
        seq = seq[seq != 6]  # drop the hub
        _, err = degree_error_by_degree(small_dist, seq)
        assert err[-1] == pytest.approx(-100.0)

    def test_unknown_degrees_ignored(self, small_dist):
        seq = np.concatenate([small_dist.expand(), [40, 40]])
        _, err = degree_error_by_degree(small_dist, seq)
        np.testing.assert_allclose(err, 0.0)

    def test_counts_full_realized_sequence(self, small_dist):
        """Regression: isolated (degree-0) vertices must not shift the
        per-class counts — the full sequence is classified as-is, with
        degree 0 falling outside every class."""
        seq = small_dist.expand()
        with_isolated = np.concatenate([seq, np.zeros(5, dtype=seq.dtype)])
        _, err_full = degree_error_by_degree(small_dist, with_isolated)
        _, err_plain = degree_error_by_degree(small_dist, seq)
        np.testing.assert_array_equal(err_full, err_plain)

    def test_all_isolated_realized_is_total_deficit(self, small_dist):
        seq = np.zeros(small_dist.n, dtype=np.int64)
        _, err = degree_error_by_degree(small_dist, seq)
        np.testing.assert_allclose(err, -100.0)


class TestAssortativity:
    def test_bounded(self, ring_graph):
        assert -1.0 <= degree_assortativity(ring_graph) <= 1.0

    def test_regular_graph_degenerate(self, ring_graph):
        # all degrees equal -> zero variance -> defined as 0
        assert degree_assortativity(ring_graph) == 0.0

    def test_star_disassortative(self):
        g = EdgeList([0, 0, 0, 0], [1, 2, 3, 4])
        assert degree_assortativity(g) == pytest.approx(-1.0)

    def test_empty(self):
        assert degree_assortativity(EdgeList([], [], n=3)) == 0.0

    def test_matches_networkx(self):
        import networkx as nx

        from repro.graph.convert import to_networkx

        rng = np.random.default_rng(1)
        u = rng.integers(0, 30, 80)
        v = rng.integers(0, 30, 80)
        keep = u != v
        g = EdgeList(u[keep], v[keep], 30).simplify()
        ours = degree_assortativity(g)
        theirs = nx.degree_assortativity_coefficient(to_networkx(g))
        assert ours == pytest.approx(theirs, abs=1e-8)


class TestVertexClasses:
    def test_layout(self, small_dist):
        cls = vertex_classes(small_dist)
        assert len(cls) == small_dist.n
        np.testing.assert_array_equal(np.bincount(cls), small_dist.counts)
        assert (np.diff(cls) >= 0).all()


class TestAttachmentMatrices:
    def test_possible_pairs(self, small_dist):
        pairs = possible_pairs_matrix(small_dist)
        assert pairs[0, 0] == 6 * 5 / 2
        assert pairs[0, 1] == 6 * 4
        assert pairs[3, 3] == 0  # single hub: no intra-class pair

    def test_edge_counts_symmetric(self, small_dist):
        g = EdgeList([0, 6, 12], [6, 10, 0], n=13)
        counts = degree_class_edge_counts(g, small_dist)
        assert np.allclose(counts, counts.T)
        assert counts.sum() == 2 * g.m - np.trace(counts)

    def test_diagonal_counts_once(self, small_dist):
        g = EdgeList([0, 1], [1, 2], n=13)  # both edges inside class 0
        counts = degree_class_edge_counts(g, small_dist)
        assert counts[0, 0] == 2

    def test_probability_bounds_simple_graph(self, small_dist):
        g = EdgeList([0, 1, 6], [6, 10, 12], n=13)
        p = attachment_probability_matrix(g, small_dist)
        assert (p >= 0).all() and (p <= 1).all()

    def test_complete_bipartite_probability_one(self):
        dist = DegreeDistribution([2, 3], [3, 2])
        # K_{2,3}: class-1 vertices (ids 3,4) connect to every class-0 vertex
        u = np.asarray([3, 3, 3, 4, 4, 4])
        v = np.asarray([0, 1, 2, 0, 1, 2])
        p = attachment_probability_matrix(EdgeList(u, v, 5), dist)
        assert p[0, 1] == pytest.approx(1.0)
        assert p[1, 0] == pytest.approx(1.0)
        assert p[0, 0] == 0.0

    def test_graph_larger_than_dist_rejected(self, small_dist):
        g = EdgeList([0], [20], n=21)
        with pytest.raises(ValueError):
            degree_class_edge_counts(g, small_dist)
