"""Hardened edge-list / degree-file parsing: malformed input diagnostics.

Satellite of the durability PR: a malformed line must produce an
:class:`~repro.graph.edgelist.EdgeListFormatError` naming the file and
1-based line number instead of a bare numpy ``ValueError``, and benign
noise (comments, blank lines, CRLF endings) must be tolerated.
"""

import numpy as np
import pytest

from repro.directed.io import load_arc_list, load_bidegree_distribution
from repro.graph.edgelist import EdgeListFormatError
from repro.graph.io import load_degree_distribution, load_edge_list, load_metis


class TestEdgeListTolerance:
    def test_comments_blank_lines_and_crlf(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_bytes(
            b"# a full-line comment\r\n"
            b"\r\n"
            b"0 1  # trailing comment\r\n"
            b"   \n"
            b"1 2\r\n"
        )
        g = load_edge_list(path)
        np.testing.assert_array_equal(g.u, [0, 1])
        np.testing.assert_array_equal(g.v, [1, 2])

    def test_header_n_survives_crlf(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_bytes(b"# n=9\r\n0 1\r\n")
        assert load_edge_list(path).n == 9

    def test_tabs_and_extra_spaces(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\t1\n 1   2 \n")
        g = load_edge_list(path)
        np.testing.assert_array_equal(g.u, [0, 1])


class TestEdgeListErrors:
    def test_wrong_column_count_names_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2 3\n")
        with pytest.raises(EdgeListFormatError) as exc:
            load_edge_list(path)
        assert exc.value.line == 2
        assert str(path) in str(exc.value)

    def test_non_integer_token_names_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n\n2 x\n")
        with pytest.raises(EdgeListFormatError) as exc:
            load_edge_list(path)
        assert exc.value.line == 3
        assert "'x'" in str(exc.value)

    def test_bad_header_n(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# n=banana\n0 1\n")
        with pytest.raises(EdgeListFormatError) as exc:
            load_edge_list(path)
        assert exc.value.line == 1

    def test_error_carries_path_attribute(self, tmp_path):
        path = tmp_path / "weird.txt"
        path.write_text("a b\n")
        with pytest.raises(EdgeListFormatError) as exc:
            load_edge_list(path)
        assert str(exc.value.path) == str(path)


class TestDegreeDistributionErrors:
    def test_tolerates_comments(self, tmp_path):
        path = tmp_path / "d.txt"
        path.write_text("# degree count\n1 4\n\n2 2\n")
        dist = load_degree_distribution(path)
        np.testing.assert_array_equal(dist.degrees, [1, 2])

    def test_wrong_columns_names_line(self, tmp_path):
        path = tmp_path / "d.txt"
        path.write_text("1 4\n2\n")
        with pytest.raises(EdgeListFormatError) as exc:
            load_degree_distribution(path)
        assert exc.value.line == 2


class TestMetisErrors:
    def test_bad_header(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("3\n1 2\n")
        with pytest.raises(EdgeListFormatError) as exc:
            load_metis(path)
        assert exc.value.line == 1

    def test_non_integer_neighbor_names_line(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("3 2\n2 3\n1\nq\n")
        with pytest.raises(EdgeListFormatError) as exc:
            load_metis(path)
        assert exc.value.line == 4


class TestDirectedMirrors:
    def test_arc_list_tolerates_noise(self, tmp_path):
        path = tmp_path / "a.txt"
        path.write_bytes(b"# n=5\r\n\r\n0 1 # arc\r\n2 3\r\n")
        g = load_arc_list(path)
        assert g.n == 5
        np.testing.assert_array_equal(g.u, [0, 2])

    def test_arc_list_error_names_line(self, tmp_path):
        path = tmp_path / "a.txt"
        path.write_text("0 1\n1 2 3\n")
        with pytest.raises(EdgeListFormatError) as exc:
            load_arc_list(path)
        assert exc.value.line == 2

    def test_bidegree_error_names_line(self, tmp_path):
        path = tmp_path / "b.txt"
        path.write_text("1 1 2\n2 oops 1\n")
        with pytest.raises(EdgeListFormatError) as exc:
            load_bidegree_distribution(path)
        assert exc.value.line == 2
        assert "'oops'" in str(exc.value)
