"""Tests for edge-list and degree-distribution file I/O."""

import numpy as np
import pytest

from repro.graph.degree import DegreeDistribution
from repro.graph.edgelist import EdgeList
from repro.graph.io import (
    load_degree_distribution,
    load_edge_list,
    save_degree_distribution,
    save_edge_list,
)


class TestEdgeListIO:
    def test_text_roundtrip(self, tmp_path, ring_graph):
        path = tmp_path / "g.txt"
        save_edge_list(ring_graph, path)
        back = load_edge_list(path)
        assert back.same_graph(ring_graph)
        assert back.n == ring_graph.n

    def test_npz_roundtrip(self, tmp_path, ring_graph):
        path = tmp_path / "g.npz"
        save_edge_list(ring_graph, path)
        back = load_edge_list(path)
        np.testing.assert_array_equal(back.u, ring_graph.u)
        np.testing.assert_array_equal(back.v, ring_graph.v)
        assert back.n == ring_graph.n

    def test_text_preserves_isolated_vertices(self, tmp_path):
        g = EdgeList([0], [1], n=7)
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        assert load_edge_list(path).n == 7

    def test_empty_graph_text(self, tmp_path):
        g = EdgeList([], [], n=3)
        path = tmp_path / "empty.txt"
        save_edge_list(g, path)
        back = load_edge_list(path)
        assert back.m == 0 and back.n == 3

    def test_npz_multigraph_exact(self, tmp_path):
        g = EdgeList([0, 0], [1, 1], n=2)
        path = tmp_path / "multi.npz"
        save_edge_list(g, path)
        assert load_edge_list(path).m == 2


class TestDegreeDistributionIO:
    def test_roundtrip(self, tmp_path, small_dist):
        path = tmp_path / "d.txt"
        save_degree_distribution(small_dist, path)
        assert load_degree_distribution(path) == small_dist

    def test_empty(self, tmp_path):
        path = tmp_path / "d.txt"
        save_degree_distribution(DegreeDistribution([], []), path)
        assert load_degree_distribution(path).n == 0


class TestMetisIO:
    def test_roundtrip(self, tmp_path, ring_graph):
        from repro.graph.io import load_metis, save_metis

        path = tmp_path / "g.metis"
        save_metis(ring_graph, path)
        back = load_metis(path)
        assert back.same_graph(ring_graph)
        assert back.n == ring_graph.n and back.m == ring_graph.m

    def test_header(self, tmp_path, ring_graph):
        from repro.graph.io import save_metis

        path = tmp_path / "g.metis"
        save_metis(ring_graph, path)
        assert path.read_text().splitlines()[0] == "10 10"

    def test_rejects_non_simple(self, tmp_path):
        from repro.graph.io import save_metis
        from repro.graph.edgelist import EdgeList

        with pytest.raises(ValueError):
            save_metis(EdgeList([0, 0], [1, 1]), tmp_path / "bad.metis")

    def test_isolated_vertices(self, tmp_path):
        from repro.graph.io import load_metis, save_metis
        from repro.graph.edgelist import EdgeList

        g = EdgeList([0], [1], n=4)
        path = tmp_path / "iso.metis"
        save_metis(g, path)
        back = load_metis(path)
        assert back.n == 4 and back.m == 1
