"""Tests for the EdgeList container."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.graph.edgelist import EdgeList


class TestConstruction:
    def test_basic(self):
        g = EdgeList([0, 1], [1, 2])
        assert g.n == 3 and g.m == 2

    def test_explicit_n(self):
        g = EdgeList([0], [1], n=10)
        assert g.n == 10

    def test_n_too_small(self):
        with pytest.raises(ValueError):
            EdgeList([0, 5], [1, 6], n=3)

    def test_negative_vertex(self):
        with pytest.raises(ValueError):
            EdgeList([-1], [0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            EdgeList([0, 1], [1])

    def test_empty(self):
        g = EdgeList([], [], n=5)
        assert g.n == 5 and g.m == 0 and len(g) == 0

    def test_from_pairs(self):
        g = EdgeList.from_pairs([(0, 1), (1, 2)])
        assert g.m == 2

    def test_from_pairs_empty(self):
        g = EdgeList.from_pairs([], n=4)
        assert g.m == 0 and g.n == 4

    def test_from_pairs_bad_shape(self):
        with pytest.raises(ValueError):
            EdgeList.from_pairs([(0, 1, 2)])

    def test_keys_roundtrip(self):
        g = EdgeList([3, 0], [1, 2])
        g2 = EdgeList.from_keys(g.keys(), g.n)
        assert g2.same_graph(g)

    def test_repr(self):
        assert "EdgeList(n=3, m=1)" in repr(EdgeList([0], [2]))

    def test_copy_independent(self):
        g = EdgeList([0], [1])
        c = g.copy()
        c.u[0] = 1
        assert g.u[0] == 0

    def test_pairs_shape(self):
        assert EdgeList([0, 1], [1, 2]).pairs().shape == (2, 2)


class TestSimplicity:
    def test_simple_graph(self, ring_graph):
        assert ring_graph.is_simple()
        assert ring_graph.count_self_loops() == 0
        assert ring_graph.count_multi_edges() == 0

    def test_self_loops_counted(self):
        g = EdgeList([0, 1, 2], [0, 1, 3])
        assert g.count_self_loops() == 2
        assert not g.is_simple()

    def test_multi_edges_counted_once_per_extra(self):
        g = EdgeList([0, 0, 0, 1], [1, 1, 1, 2])
        assert g.count_multi_edges() == 2

    def test_multi_edge_detects_reversed_orientation(self):
        g = EdgeList([0, 1], [1, 0])
        assert g.count_multi_edges() == 1

    def test_simplify_removes_all(self):
        # three copies of {0,1}, a {1,1} loop, a {2,2} loop -> just {0,1}
        g = EdgeList([0, 0, 1, 2, 0], [1, 1, 1, 2, 1])
        s = g.simplify()
        assert s.is_simple()
        assert s.m == 1
        assert s.n == g.n

    def test_simplify_preserves_simple(self, ring_graph):
        assert ring_graph.simplify().same_graph(ring_graph)

    def test_empty_simplify(self):
        g = EdgeList([], [], n=2).simplify()
        assert g.m == 0 and g.n == 2


class TestDegrees:
    def test_ring_degrees(self, ring_graph):
        np.testing.assert_array_equal(ring_graph.degree_sequence(), np.full(10, 2))

    def test_self_loop_counts_two(self):
        g = EdgeList([0], [0], n=2)
        np.testing.assert_array_equal(g.degree_sequence(), [2, 0])

    def test_isolated_vertices(self):
        g = EdgeList([0], [1], n=4)
        np.testing.assert_array_equal(g.degree_sequence(), [1, 1, 0, 0])

    def test_degree_sum_is_2m(self):
        rng = np.random.default_rng(0)
        g = EdgeList(rng.integers(0, 20, 50), rng.integers(0, 20, 50))
        assert g.degree_sequence().sum() == 2 * g.m


class TestSameGraph:
    def test_orientation_invariant(self):
        a = EdgeList([0, 1], [1, 2], n=3)
        b = EdgeList([2, 1], [1, 0], n=3)
        assert a.same_graph(b)

    def test_different_n(self):
        assert not EdgeList([0], [1], n=2).same_graph(EdgeList([0], [1], n=3))

    def test_different_edges(self):
        assert not EdgeList([0], [1], n=3).same_graph(EdgeList([0], [2], n=3))

    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=30))
    def test_property_shuffle_invariant(self, pairs):
        if not pairs:
            return
        u = np.asarray([p[0] for p in pairs])
        v = np.asarray([p[1] for p in pairs])
        a = EdgeList(u, v, n=9)
        perm = np.random.default_rng(0).permutation(len(u))
        b = EdgeList(v[perm], u[perm], n=9)
        assert a.same_graph(b)
