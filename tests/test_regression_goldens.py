"""Seeded regression goldens for the headline reproduction numbers.

Every quantity below is produced by a fixed-seed run, so drift means a
*semantic* change to an algorithm (not sampling noise).  Ranges are
deliberately loose enough to survive numpy version changes in RNG-free
arithmetic but tight enough to catch a broken kernel: e.g. a swap
acceptance rate moving by 0.1, or the probability heuristic's residual
doubling.
"""

import numpy as np
import pytest

from repro import DegreeDistribution, ParallelConfig, generate_graph
from repro.core.probabilities import expected_degrees, generate_probabilities
from repro.core.swap import SwapStats, swap_edges
from repro.datasets import load
from repro.generators.havel_hakimi import havel_hakimi_graph


class TestProbabilityGoldens:
    def test_meso_expected_degree_error(self):
        dist = load("Meso")
        res = generate_probabilities(dist)
        got = expected_degrees(res.P, dist)
        rel = (np.abs(got - dist.degrees) / dist.degrees).mean()
        # measured 0.0140 at the time of recording
        assert 0.005 < rel < 0.03

    def test_as20_residual_fraction(self):
        dist = load("as20")
        res = generate_probabilities(dist)
        frac = res.residual_stubs.sum() / dist.stub_count()
        # measured 0.0298
        assert 0.01 < frac < 0.06


class TestPipelineGoldens:
    def test_meso_edge_deficit(self):
        dist = load("Meso")
        sizes = [
            generate_graph(dist, swap_iterations=0, config=ParallelConfig(seed=s))[0].m
            for s in range(8)
        ]
        deficit = 1.0 - np.mean(sizes) / dist.m
        # ours loses ~1.5-4% of edges pre-swap (vs ~10-16% for baselines)
        assert 0.0 < deficit < 0.06

    def test_as20_swap_acceptance(self):
        dist = load("as20")
        g = havel_hakimi_graph(dist)
        stats = SwapStats()
        swap_edges(g, 3, ParallelConfig(seed=7), stats=stats)
        # measured ~0.50 on this skew level
        assert 0.35 < stats.acceptance_rate < 0.65

    def test_livejournal_swapped_fraction_first_iteration(self):
        dist = load("LiveJournal")
        g = havel_hakimi_graph(dist)
        stats = SwapStats()
        swap_edges(g, 1, ParallelConfig(seed=7), stats=stats)
        # measured 0.693 at default twin scale
        assert 0.60 < stats.swapped_fraction < 0.80


class TestBaselineGoldens:
    def test_erased_deficit_band(self):
        from repro.generators.chung_lu import erased_chung_lu

        dist = load("as20")
        sizes = [erased_chung_lu(dist, ParallelConfig(seed=s)).m for s in range(5)]
        deficit = 1.0 - np.mean(sizes) / dist.m
        # measured ~0.155; must stay far above ours (~0.03)
        assert 0.10 < deficit < 0.25

    def test_om_multi_edge_band(self):
        from repro.generators.chung_lu import chung_lu_om

        dist = load("as20")
        g = chung_lu_om(dist, ParallelConfig(seed=3))
        frac = (g.count_multi_edges() + g.count_self_loops()) / g.m
        # measured ~0.16 — the "expected number of multi-edges exceeds
        # one" regime that makes repeated configuration impractical
        assert 0.08 < frac < 0.30


def _golden_chunk_kernel(lo, hi, seed):
    """Module-level (picklable) kernel for the process_chunk_map golden."""
    return np.random.default_rng(seed).integers(0, 1000, size=hi - lo)


class TestExactBackendGoldens:
    """Exact-output pins catching drift in backend refactors.

    Unlike the banded goldens above, these assert bit-exact results: the
    swap engine and the chunk mapper are deterministic for a fixed seed,
    and every backend must reproduce the same bits.
    """

    @staticmethod
    def _golden_graph():
        from repro.graph.edgelist import EdgeList

        rng = np.random.default_rng(42)
        u = rng.integers(0, 60, 400)
        v = rng.integers(0, 60, 400)
        keep = u != v
        return EdgeList(u[keep], v[keep], 60).simplify()

    @pytest.mark.parametrize("backend", ["vectorized", "serial", "process"])
    def test_swap_edges_exact_output(self, backend):
        from repro.parallel.hashtable import pack_edges

        g = self._golden_graph()
        stats = SwapStats()
        out = swap_edges(
            g, 4, ParallelConfig(threads=4, backend=backend, seed=2020),
            stats=stats,
        )
        keys = np.sort(pack_edges(out.u, out.v))
        assert out.m == 358
        assert int(keys.sum()) == 30988189054908
        assert keys[:5].tolist() == [2, 5, 12, 18, 44]
        assert stats.proposed == 716
        assert stats.accepted == 354

    @pytest.mark.parametrize("backend", ["vectorized", "process"])
    def test_process_chunk_map_exact_output(self, backend):
        from repro.parallel.mp_backend import process_chunk_map

        cfg = ParallelConfig(threads=4, backend=backend, seed=5)
        out = np.concatenate(process_chunk_map(_golden_chunk_kernel, 32, cfg))
        assert int(out.sum()) == 17623
        assert out[:8].tolist() == [336, 948, 126, 557, 782, 68, 315, 15]
        assert out[-4:].tolist() == [296, 792, 175, 823]


class TestUniformityGolden:
    def test_two_regular_six_vertices(self):
        from repro.graph.edgelist import EdgeList
        from repro.graph.components import component_sizes

        u = np.arange(6)
        start = EdgeList(u, (u + 1) % 6, 6)
        hits = 0
        runs = 300
        for s in range(runs):
            out = swap_edges(start, 12, ParallelConfig(seed=s))
            hits += len(component_sizes(out)) == 1
        # analytic 6/7 = 0.857; binomial sd ~0.02
        assert 0.78 < hits / runs < 0.93
