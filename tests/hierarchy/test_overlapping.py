"""Tests for overlapping community generation."""

import numpy as np
import pytest

from repro.hierarchy.overlapping import overlapping_communities
from repro.parallel.runtime import ParallelConfig


def two_overlapping(n=120, overlap=20):
    """Communities [0, 70) and [50, 120): vertices 50-69 in both."""
    memberships = []
    for v in range(n):
        comms = []
        if v < 70:
            comms.append(0)
        if v >= 50:
            comms.append(1)
        memberships.append(comms)
    return memberships


class TestOverlappingCommunities:
    def test_basic(self, cfg):
        n = 120
        degrees = np.full(n, 6)
        g, info = overlapping_communities(degrees, two_overlapping(), config=cfg)
        assert g.is_simple()
        assert g.n == n
        names = {l["level"] for l in info["layers"]}
        assert names == {"community-0", "community-1"}

    def test_overlap_vertices_connect_to_both(self, cfg):
        n = 120
        degrees = np.full(n, 8)
        g, _ = overlapping_communities(degrees, two_overlapping(), config=cfg)
        # an overlap vertex should have neighbors on both exclusive sides
        overlap = range(50, 70)
        left_only = set(range(0, 50))
        right_only = set(range(70, 120))
        hits_left = hits_right = 0
        for v in overlap:
            nbrs = set(g.v[g.u == v].tolist()) | set(g.u[g.v == v].tolist())
            hits_left += bool(nbrs & left_only)
            hits_right += bool(nbrs & right_only)
        assert hits_left > 10 and hits_right > 10

    def test_background_layer(self, cfg):
        n = 90
        degrees = np.full(n, 4)
        memberships = [[0] if v < 40 else [] for v in range(n)]
        g, info = overlapping_communities(
            degrees, memberships, background_share=0.25, config=cfg
        )
        assert g.is_simple()
        assert any(l["level"] == "background" for l in info["layers"])
        # community-less vertices still realize most of their degree
        deg = g.degree_sequence()
        assert deg[40:].mean() > 2.0

    def test_custom_shares(self, cfg):
        n = 60
        degrees = np.full(n, 6)
        memberships = [[0, 1] for _ in range(n)]
        shares = [[0.8, 0.2] for _ in range(n)]
        g, _ = overlapping_communities(degrees, memberships, shares=shares, config=cfg)
        assert g.is_simple()

    def test_validation(self, cfg):
        with pytest.raises(ValueError, match="every vertex"):
            overlapping_communities(np.full(5, 2), [[0]], config=cfg)
        with pytest.raises(ValueError, match="background_share"):
            overlapping_communities(
                np.full(4, 2), [[0]] * 4, background_share=1.5, config=cfg
            )
        with pytest.raises(ValueError):
            overlapping_communities(
                np.full(4, 2), [[0]] * 4, shares=[[0.5]] * 3, config=cfg
            )

    def test_degree_budget_respected(self, cfg):
        """Realized degrees track targets despite overlap."""
        n = 120
        degrees = np.full(n, 10)
        g, _ = overlapping_communities(degrees, two_overlapping(), config=cfg)
        assert g.degree_sequence().sum() >= 0.9 * degrees.sum()
