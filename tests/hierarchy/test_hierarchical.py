"""Tests for the generalized λ-share hierarchy."""

import numpy as np
import pytest

from repro.hierarchy.hierarchical import Level, generate_hierarchical
from repro.hierarchy.metrics import mixing_fraction
from repro.parallel.runtime import ParallelConfig


def make_levels(n, groups, lam):
    membership = np.repeat(np.arange(groups), n // groups)
    level1 = Level(membership, np.full(n, lam), "local")
    level2 = Level(np.zeros(n, dtype=int), np.full(n, 1.0 - lam), "global")
    return [level1, level2], membership


class TestLevel:
    def test_valid(self):
        Level(np.asarray([0, 1]), np.asarray([0.5, 0.5]))

    def test_share_out_of_range(self):
        with pytest.raises(ValueError):
            Level(np.asarray([0]), np.asarray([1.5]))

    def test_uncovered_with_share(self):
        with pytest.raises(ValueError):
            Level(np.asarray([-1]), np.asarray([0.5]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            Level(np.asarray([0, 1]), np.asarray([0.5]))


class TestGenerateHierarchical:
    def test_basic_two_level(self, cfg):
        n = 200
        degrees = np.full(n, 6)
        levels, _ = make_levels(n, 4, 0.5)
        g, info = generate_hierarchical(degrees, levels, cfg)
        assert g.is_simple()
        assert g.n == n
        # degree conservation up to union-duplicate losses
        assert g.degree_sequence().sum() >= 0.95 * degrees.sum()

    def test_shares_must_sum_to_one(self, cfg):
        n = 40
        degrees = np.full(n, 4)
        level = Level(np.zeros(n, dtype=int), np.full(n, 0.7))
        with pytest.raises(ValueError, match="sum to 1"):
            generate_hierarchical(degrees, [level], cfg)

    def test_membership_length_checked(self, cfg):
        level = Level(np.zeros(3, dtype=int), np.full(3, 1.0))
        with pytest.raises(ValueError, match="full vertex range"):
            generate_hierarchical(np.full(5, 2), [level], cfg)

    def test_layer_degree_split_exact(self, cfg):
        """Largest-remainder rounding: layer degrees sum to the target."""
        n = 60
        rng = np.random.default_rng(0)
        degrees = rng.integers(1, 9, n)
        levels, _ = make_levels(n, 3, 0.37)
        g, info = generate_hierarchical(degrees, levels, cfg)
        # realized total degree within duplicate-union slack
        assert g.degree_sequence().sum() >= 0.9 * degrees.sum()

    def test_lambda_controls_mixing(self):
        """Higher local share => fewer cross-group edges."""
        n = 240
        degrees = np.full(n, 8)
        cfg = ParallelConfig(threads=2, seed=5)
        fracs = []
        for lam in (0.8, 0.2):
            levels, membership = make_levels(n, 4, lam)
            g, _ = generate_hierarchical(degrees, levels, cfg)
            fracs.append(mixing_fraction(g, membership))
        assert fracs[0] < fracs[1]

    def test_three_levels(self, cfg):
        n = 120
        degrees = np.full(n, 9)
        l1 = Level(np.repeat(np.arange(6), 20), np.full(n, 0.4), "fine")
        l2 = Level(np.repeat(np.arange(2), 60), np.full(n, 0.3), "coarse")
        l3 = Level(np.zeros(n, dtype=int), np.full(n, 0.3), "global")
        g, info = generate_hierarchical(degrees, [l1, l2, l3], cfg)
        assert g.is_simple()
        assert len(info["layers"]) == 6 + 2 + 1

    def test_uncovered_vertices_allowed(self, cfg):
        """A level may cover a subset; shares still sum to 1 via others."""
        n = 80
        degrees = np.full(n, 4)
        membership = np.full(n, -1)
        membership[:40] = 0
        shares = np.zeros(n)
        shares[:40] = 0.5
        partial = Level(membership, shares, "half")
        rest = Level(np.zeros(n, dtype=int), np.where(shares > 0, 0.5, 1.0), "global")
        g, _ = generate_hierarchical(degrees, [partial, rest], cfg)
        assert g.is_simple()

    def test_info_reports_layers(self, cfg):
        n = 100
        degrees = np.full(n, 4)
        levels, _ = make_levels(n, 2, 0.5)
        _, info = generate_hierarchical(degrees, levels, cfg)
        assert {l["level"] for l in info["layers"]} == {"local", "global"}
        assert all(l["edges"] >= 0 for l in info["layers"])
        assert info["duplicates_dropped"] >= 0
