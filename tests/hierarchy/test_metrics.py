"""Tests for community metrics."""

import numpy as np
import pytest

from repro.graph.edgelist import EdgeList
from repro.hierarchy.metrics import community_sizes, mixing_fraction, modularity


def two_triangles():
    """Two disjoint triangles: perfect communities."""
    u = np.asarray([0, 1, 2, 3, 4, 5])
    v = np.asarray([1, 2, 0, 4, 5, 3])
    return EdgeList(u, v, 6), np.asarray([0, 0, 0, 1, 1, 1])


class TestMixingFraction:
    def test_no_crossing(self):
        g, comm = two_triangles()
        assert mixing_fraction(g, comm) == 0.0

    def test_all_crossing(self):
        g = EdgeList([0, 1], [2, 3], 4)
        comm = np.asarray([0, 0, 1, 1])
        assert mixing_fraction(g, comm) == 1.0

    def test_half(self):
        g = EdgeList([0, 0], [1, 2], 3)
        comm = np.asarray([0, 0, 1])
        assert mixing_fraction(g, comm) == 0.5

    def test_empty_graph(self):
        assert mixing_fraction(EdgeList([], [], n=2), np.asarray([0, 1])) == 0.0

    def test_wrong_length(self):
        g = EdgeList([0], [1], 2)
        with pytest.raises(ValueError):
            mixing_fraction(g, np.asarray([0]))


class TestModularity:
    def test_perfect_communities(self):
        g, comm = two_triangles()
        # Q = sum(3/6 - (6/12)^2) * 2 = 0.5
        assert modularity(g, comm) == pytest.approx(0.5)

    def test_single_community_zero(self):
        g, _ = two_triangles()
        assert modularity(g, np.zeros(6, dtype=int)) == pytest.approx(0.0)

    def test_matches_networkx(self):
        import networkx as nx

        from repro.graph.convert import to_networkx

        rng = np.random.default_rng(0)
        u = rng.integers(0, 20, 60)
        v = rng.integers(0, 20, 60)
        keep = u != v
        g = EdgeList(u[keep], v[keep], 20).simplify()
        comm = rng.integers(0, 3, 20)
        groups = [set(np.flatnonzero(comm == c).tolist()) for c in range(3)]
        theirs = nx.algorithms.community.modularity(to_networkx(g), groups)
        assert modularity(g, comm) == pytest.approx(theirs, abs=1e-9)

    def test_empty(self):
        assert modularity(EdgeList([], [], n=2), np.asarray([0, 1])) == 0.0


class TestCommunitySizes:
    def test_counts(self):
        np.testing.assert_array_equal(community_sizes(np.asarray([0, 1, 1, 2])), [1, 2, 1])

    def test_empty(self):
        assert community_sizes(np.asarray([], dtype=int)).shape == (0,)
