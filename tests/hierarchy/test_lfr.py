"""Tests for LFR-like generation (Section VI)."""

import numpy as np
import pytest

from repro.hierarchy.lfr import (
    LFRGraph,
    LFRParams,
    layer_union,
    lfr_like,
    sample_community_sizes,
)
from repro.hierarchy.metrics import mixing_fraction, modularity
from repro.graph.edgelist import EdgeList
from repro.parallel.runtime import ParallelConfig


class TestParams:
    def test_defaults_valid(self):
        LFRParams()

    def test_bad_mu(self):
        with pytest.raises(ValueError):
            LFRParams(mu=1.5)

    def test_bad_community_bounds(self):
        with pytest.raises(ValueError):
            LFRParams(min_community=50, max_community=10)

    def test_bad_degree_bounds(self):
        with pytest.raises(ValueError):
            LFRParams(d_min=10, d_max=5)

    def test_n_too_small(self):
        with pytest.raises(ValueError):
            LFRParams(n=5, min_community=10)


class TestCommunitySizes:
    def test_covers_n_exactly(self):
        rng = np.random.default_rng(0)
        for n in (100, 137, 505):
            sizes = sample_community_sizes(n, 1.5, 10, 50, rng)
            assert sizes.sum() == n

    def test_bounds_respected(self):
        sizes = sample_community_sizes(400, 1.5, 10, 50, 1)
        assert sizes.min() >= 10 and sizes.max() <= 50

    def test_powerlaw_shape(self):
        """Small communities should outnumber large ones."""
        sizes = sample_community_sizes(3000, 2.0, 10, 100, 2)
        small = (sizes < 30).sum()
        large = (sizes > 70).sum()
        assert small > large


class TestLayerUnion:
    def test_empty(self):
        g, dropped = layer_union([], 5)
        assert g.m == 0 and g.n == 5 and dropped == 0

    def test_none_layers_skipped(self):
        g, dropped = layer_union([None, EdgeList([0], [1], 3)], 3)
        assert g.m == 1

    def test_duplicates_dropped_and_counted(self):
        a = EdgeList([0, 1], [1, 2], 3)
        b = EdgeList([1, 2], [0, 1], 3)  # same edges reversed
        g, dropped = layer_union([a, b], 3)
        assert g.m == 2 and dropped == 2


class TestLFRLike:
    @pytest.fixture(scope="class")
    def generated(self):
        params = LFRParams(n=500, mu=0.25, d_min=2, d_max=25,
                           min_community=10, max_community=60)
        return lfr_like(params, ParallelConfig(threads=4, seed=7))

    def test_simple(self, generated):
        assert generated.graph.is_simple()

    def test_vertex_count(self, generated):
        assert generated.graph.n == 500
        assert len(generated.communities) == 500

    def test_mixing_near_target(self, generated):
        measured = mixing_fraction(generated.graph, generated.communities)
        assert abs(measured - 0.25) < 0.12

    def test_degree_split_consistent(self, generated):
        total = generated.internal_degrees + generated.external_degrees
        assert (generated.internal_degrees >= 0).all()
        assert (generated.external_degrees >= 0).all()
        # per-community internal sums must be even (generatable)
        for c in np.unique(generated.communities):
            members = generated.communities == c
            assert generated.internal_degrees[members].sum() % 2 == 0

    def test_edge_count_close_to_target(self, generated):
        target = (generated.internal_degrees.sum() + generated.external_degrees.sum()) / 2
        assert generated.graph.m >= 0.9 * target
        assert generated.graph.m <= 1.1 * target

    def test_modularity_tracks_mu(self):
        cfg = ParallelConfig(threads=2, seed=8)
        qs = []
        for mu in (0.1, 0.5, 0.8):
            out = lfr_like(LFRParams(n=400, mu=mu, d_max=20), cfg)
            qs.append(modularity(out.graph, out.communities))
        assert qs[0] > qs[1] > qs[2]

    def test_mu_zero_no_external(self):
        out = lfr_like(LFRParams(n=300, mu=0.0, d_max=15), ParallelConfig(seed=9))
        assert mixing_fraction(out.graph, out.communities) < 0.02

    def test_mu_one_mostly_external(self):
        out = lfr_like(LFRParams(n=300, mu=1.0, d_max=15), ParallelConfig(seed=10))
        assert mixing_fraction(out.graph, out.communities) > 0.7

    def test_reproducible(self):
        params = LFRParams(n=200, mu=0.3, d_max=12)
        a = lfr_like(params, ParallelConfig(seed=11))
        b = lfr_like(params, ParallelConfig(seed=11))
        assert a.graph.same_graph(b.graph)
        np.testing.assert_array_equal(a.communities, b.communities)

    def test_small_skewed_communities_match_degrees(self, generated):
        """Section VI's claim: per-community internal degree distributions
        are captured (where Chung-Lu methods fail)."""
        g = generated.graph
        comm = generated.communities
        internal = generated.internal_degrees
        # realized internal degree (per-vertex realization is binomial;
        # compare per-community sums, where the noise averages out)
        cross = comm[g.u] != comm[g.v]
        iu, iv = g.u[~cross], g.v[~cross]
        realized = np.bincount(iu, minlength=g.n) + np.bincount(iv, minlength=g.n)
        n_comm = int(comm.max()) + 1
        realized_sum = np.bincount(comm, weights=realized.astype(float), minlength=n_comm)
        intended_sum = np.bincount(comm, weights=internal.astype(float), minlength=n_comm)
        ok = intended_sum > 0
        rel = np.abs(realized_sum[ok] - intended_sum[ok]) / intended_sum[ok]
        assert rel.mean() < 0.2
