"""Cross-subsystem integration tests.

Each test exercises a realistic multi-module workflow end to end —
generation → persistence → randomization → measurement — the paths a
downstream user actually strings together.
"""

import numpy as np
import pytest

from repro import (
    DegreeDistribution,
    EdgeList,
    ParallelConfig,
    generate_graph,
    swap_edges,
)
from repro.datasets import load
from repro.graph.io import (
    load_edge_list,
    load_metis,
    save_edge_list,
    save_metis,
)


class TestGenerateSaveLoadSwap:
    def test_full_cycle_text(self, tmp_path):
        """Generate → save → load → randomize → degrees preserved."""
        dist = load("Meso")
        cfg = ParallelConfig(threads=4, seed=1)
        g, _ = generate_graph(dist, swap_iterations=2, config=cfg)
        path = tmp_path / "graph.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.same_graph(g)
        null = swap_edges(loaded, 5, cfg)
        assert null.is_simple()
        np.testing.assert_array_equal(
            np.sort(null.degree_sequence()), np.sort(g.degree_sequence())
        )

    def test_full_cycle_metis(self, tmp_path):
        dist = load("Meso")
        g, _ = generate_graph(dist, swap_iterations=1, config=ParallelConfig(seed=2))
        path = tmp_path / "graph.metis"
        save_metis(g, path)
        assert load_metis(path).same_graph(g)

    def test_distribution_roundtrip_through_graph(self):
        """dist → graph → measured dist ≈ input (after swaps, exact-m HH)."""
        from repro.bench.harness import uniform_reference

        dist = load("Meso")
        g = uniform_reference(dist, ParallelConfig(seed=3), swap_iterations=4)
        measured = DegreeDistribution.from_graph(g)
        assert measured == dist


class TestSolverPipelineInterop:
    def test_lsq_probabilities_through_full_pipeline(self):
        from repro.core.solvers import solve_probabilities_lsq

        dist = DegreeDistribution([1, 2, 3, 8], [20, 10, 6, 2])
        prob = solve_probabilities_lsq(dist)
        g, report = generate_graph(
            dist, swap_iterations=3, config=ParallelConfig(seed=4), probabilities=prob
        )
        assert g.is_simple()
        assert report.swap_stats.iterations == 3

    def test_corrected_weights_through_edge_skip_and_swaps(self):
        from repro.generators.corrected_chung_lu import corrected_bernoulli_chung_lu

        dist = load("Meso")
        g, res = corrected_bernoulli_chung_lu(dist, ParallelConfig(seed=5))
        assert res.converged
        null = swap_edges(g, 3, ParallelConfig(seed=5))
        assert null.is_simple()


class TestHierarchyInterop:
    def test_lfr_graph_feeds_motif_kernels(self):
        from repro.graph.csr import transitivity, triangle_count
        from repro.hierarchy import LFRParams, lfr_like

        out = lfr_like(LFRParams(n=300, mu=0.2, d_max=20), ParallelConfig(seed=6))
        t = triangle_count(out.graph)
        assert t >= 0
        assert 0.0 <= transitivity(out.graph) <= 1.0

    def test_lfr_communities_survive_null_model_comparison(self):
        """Modularity of planted communities collapses under rewiring —
        the hypothesis-testing workflow LFR benchmarks exist for."""
        from repro.hierarchy import LFRParams, lfr_like, modularity

        out = lfr_like(LFRParams(n=400, mu=0.15, d_max=20), ParallelConfig(seed=7))
        q_real = modularity(out.graph, out.communities)
        null = swap_edges(out.graph, 8, ParallelConfig(seed=7))
        q_null = modularity(null, out.communities)
        assert q_real > q_null + 0.2


class TestDirectedInterop:
    def test_undirected_projection_of_directed_null_model(self):
        from repro.directed import (
            DirectedDegreeDistribution,
            directed_generate_graph,
        )

        rng = np.random.default_rng(8)
        u = rng.integers(0, 100, 400)
        v = rng.integers(0, 100, 400)
        from repro.directed.edgelist import DirectedEdgeList

        base = DirectedEdgeList(u[u != v], v[u != v], 100).simplify()
        dist = DirectedDegreeDistribution.from_graph(base)
        dg, _ = directed_generate_graph(
            dist, swap_iterations=2, config=ParallelConfig(seed=8)
        )
        # project to undirected and keep analyzing with undirected tools
        und = EdgeList(dg.u, dg.v, dg.n).simplify()
        assert und.is_simple()
        assert und.m <= dg.m


class TestDistributedInterop:
    def test_distributed_output_equivalent_for_mixing(self):
        """Distributed and shared-memory swaps land in the same space —
        attachment matrices agree within sampling noise."""
        from repro.distributed import distributed_swap_edges
        from repro.core.mixing import l1_probability_error
        from repro.graph.stats import attachment_probability_matrix
        from repro.generators.havel_hakimi import havel_hakimi_graph

        dist = load("Meso")
        g = havel_hakimi_graph(dist)
        cfg = ParallelConfig(seed=9)

        def avg_matrix(fn, samples=4):
            acc = np.zeros((dist.n_classes, dist.n_classes))
            for s in range(samples):
                acc += attachment_probability_matrix(fn(s), dist)
            return acc / samples

        shared = avg_matrix(lambda s: swap_edges(g, 6, cfg.with_seed(s)))
        distributed = avg_matrix(
            lambda s: distributed_swap_edges(g, 6, 4, cfg.with_seed(s))[0]
        )
        # compare both against each other: same stationary behaviour
        assert l1_probability_error(distributed, shared) < 0.5
