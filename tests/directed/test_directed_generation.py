"""Tests for directed realization, swaps, and the end-to-end pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.directed import (
    DirectedDegreeDistribution,
    DirectedSwapStats,
    directed_chung_lu_om,
    directed_erased_chung_lu,
    directed_generate_edges,
    directed_generate_graph,
    directed_probabilities,
    directed_swap_edges,
    kleitman_wang_graph,
)
from repro.directed.edge_skip import offdiag_unrank
from repro.directed.edgelist import DirectedEdgeList
from repro.directed.probabilities import expected_in_degrees, expected_out_degrees
from repro.parallel.runtime import ParallelConfig


def random_bidegree(n, m, seed) -> DirectedDegreeDistribution:
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, 2 * m)
    v = rng.integers(0, n, 2 * m)
    g = DirectedEdgeList(u[u != v][:m], v[u != v][:m], n).simplify()
    return DirectedDegreeDistribution.from_graph(g)


@pytest.fixture(scope="module")
def dist():
    return random_bidegree(300, 1200, 0)


class TestKleitmanWang:
    def test_realizes_exactly(self, dist):
        g = kleitman_wang_graph(dist)
        assert g.is_simple()
        out_seq, in_seq = dist.expand()
        np.testing.assert_array_equal(np.sort(g.out_degrees()), np.sort(out_seq))
        np.testing.assert_array_equal(np.sort(g.in_degrees()), np.sort(in_seq))

    def test_cycle(self):
        d = DirectedDegreeDistribution([1], [1], [5])
        g = kleitman_wang_graph(d)
        assert g.m == 5 and g.is_simple()

    def test_unbalanced_sums_rejected_at_construction(self):
        with pytest.raises(ValueError, match="stub total"):
            DirectedDegreeDistribution([0, 2], [2, 1], [2, 1])

    def test_non_digraphical_raises(self):
        # balanced sums but not realizable as a simple digraph
        with pytest.raises(ValueError, match="not digraphical"):
            kleitman_wang_graph(
                DirectedDegreeDistribution.from_sequences([3, 0, 0], [0, 1, 2])
            )

    def test_matches_fca(self, dist):
        assert dist.is_digraphical()


class TestOffdiagUnrank:
    def test_bijection(self):
        size = 7
        end = size * (size - 1)
        a, b = offdiag_unrank(np.arange(end), size)
        assert (a != b).all()
        pairs = set(zip(a.tolist(), b.tolist()))
        assert len(pairs) == end

    @given(st.integers(2, 40))
    def test_property_all_pairs(self, size):
        end = size * (size - 1)
        a, b = offdiag_unrank(np.arange(end), size)
        assert a.min() >= 0 and a.max() < size
        assert b.min() >= 0 and b.max() < size
        assert (a != b).all()


class TestDirectedSwaps:
    def test_preserves_bidegrees(self, dist):
        g = kleitman_wang_graph(dist)
        out = directed_swap_edges(g, 5, ParallelConfig(seed=1, threads=4))
        np.testing.assert_array_equal(out.out_degrees(), g.out_degrees())
        np.testing.assert_array_equal(out.in_degrees(), g.in_degrees())

    def test_preserves_simplicity(self, dist):
        g = kleitman_wang_graph(dist)
        assert directed_swap_edges(g, 8, ParallelConfig(seed=2)).is_simple()

    def test_actually_moves(self, dist):
        g = kleitman_wang_graph(dist)
        out = directed_swap_edges(g, 3, ParallelConfig(seed=3))
        assert not out.same_graph(g)

    def test_stats(self, dist):
        g = kleitman_wang_graph(dist)
        stats = DirectedSwapStats()
        directed_swap_edges(g, 4, ParallelConfig(seed=4), stats=stats)
        assert stats.iterations == 4
        assert stats.proposed == 4 * (g.m // 2)
        assert (
            stats.accepted + stats.rejected_duplicate + stats.rejected_self_loop
            == stats.proposed
        )
        assert 0 < stats.acceptance_rate <= 1
        fr = stats.swapped_fraction_per_iteration
        assert all(b >= a for a, b in zip(fr, fr[1:]))

    def test_simplifies_multigraph(self, dist):
        g = directed_chung_lu_om(dist, ParallelConfig(seed=5))
        loops0 = g.count_self_loops()
        multi0 = g.count_multi_arcs()
        assert loops0 + multi0 > 0
        out = directed_swap_edges(g, 25, ParallelConfig(seed=5))
        assert out.count_self_loops() <= loops0
        assert out.count_multi_arcs() <= multi0
        np.testing.assert_array_equal(out.out_degrees(), g.out_degrees())
        np.testing.assert_array_equal(out.in_degrees(), g.in_degrees())

    def test_zero_iterations(self, dist):
        g = kleitman_wang_graph(dist)
        assert directed_swap_edges(g, 0, ParallelConfig(seed=0)).same_graph(g)

    def test_negative_iterations(self, dist):
        g = kleitman_wang_graph(dist)
        with pytest.raises(ValueError):
            directed_swap_edges(g, -1)

    def test_reproducible(self, dist):
        g = kleitman_wang_graph(dist)
        a = directed_swap_edges(g, 3, ParallelConfig(seed=9))
        b = directed_swap_edges(g, 3, ParallelConfig(seed=9))
        assert a.same_graph(b)


class TestDirectedChungLu:
    def test_arc_count_exact(self, dist):
        g = directed_chung_lu_om(dist, ParallelConfig(seed=1))
        assert g.m == dist.m

    def test_erased_simple(self, dist):
        assert directed_erased_chung_lu(dist, ParallelConfig(seed=1)).is_simple()

    def test_degrees_in_expectation(self, dist):
        runs = 15
        acc_out = np.zeros(dist.n)
        for s in range(runs):
            acc_out += directed_chung_lu_om(dist, ParallelConfig(seed=s)).out_degrees()
        out_seq, _ = dist.expand()
        rel = np.abs(acc_out / runs - out_seq).sum() / out_seq.sum()
        assert rel < 0.15

    def test_empty(self):
        d = DirectedDegreeDistribution([], [], [])
        assert directed_chung_lu_om(d).m == 0


class TestDirectedProbabilities:
    def test_valid_and_balanced(self, dist):
        res = directed_probabilities(dist)
        assert (res.P >= 0).all() and (res.P <= 1).all()
        assert res.total_expected_arcs == pytest.approx(dist.m, rel=0.05)

    def test_expected_degrees_close(self, dist):
        res = directed_probabilities(dist)
        eo = expected_out_degrees(res.P, dist)
        ei = expected_in_degrees(res.P, dist)
        mo = dist.out_degrees > 0
        mi = dist.in_degrees > 0
        assert (np.abs(eo - dist.out_degrees)[mo] / dist.out_degrees[mo]).mean() < 0.05
        assert (np.abs(ei - dist.in_degrees)[mi] / dist.in_degrees[mi]).mean() < 0.05

    def test_residuals_nonnegative(self, dist):
        res = directed_probabilities(dist)
        assert (res.residual_out_stubs >= -1e-9).all()
        assert (res.residual_in_stubs >= -1e-9).all()

    def test_bad_passes(self, dist):
        with pytest.raises(ValueError):
            directed_probabilities(dist, passes=0)


class TestDirectedEdgeSkip:
    def test_output_simple(self, dist):
        res = directed_probabilities(dist)
        g = directed_generate_edges(res.P, dist, ParallelConfig(seed=1))
        assert g.is_simple()

    def test_probability_one_complete_loopless(self):
        d = DirectedDegreeDistribution([2], [2], [3])  # single class, size 3
        P = np.ones((1, 1))
        g = directed_generate_edges(P, d, ParallelConfig(seed=0))
        assert g.m == 3 * 2  # all ordered pairs except loops
        assert g.is_simple()

    def test_probability_zero(self, dist):
        P = np.zeros((dist.n_classes, dist.n_classes))
        assert directed_generate_edges(P, dist, ParallelConfig(seed=0)).m == 0

    def test_bad_shape(self, dist):
        with pytest.raises(ValueError):
            directed_generate_edges(np.zeros((2, 2)), dist)

    def test_asymmetric_P_is_legal(self):
        """Directed probabilities need not be symmetric."""
        d = DirectedDegreeDistribution([0, 2], [2, 0], [4, 4])
        P = np.zeros((2, 2))
        P[1, 0] = 0.5  # class 1 (out=2) sources -> class 0 (in=2) targets
        g = directed_generate_edges(P, d, ParallelConfig(seed=1))
        assert g.is_simple()
        if g.m:
            offsets = d.class_offsets()
            assert (g.u >= offsets[1]).all()
            assert (g.v < offsets[1]).all()


class TestEndToEnd:
    def test_pipeline(self, dist):
        g, report = directed_generate_graph(
            dist, swap_iterations=4, config=ParallelConfig(seed=7, threads=4)
        )
        assert g.is_simple()
        assert g.m == pytest.approx(dist.m, rel=0.1)
        assert report.swap_stats.iterations == 4
        assert set(report.phase_seconds) == {
            "probabilities", "edge_generation", "swap",
        }

    def test_reproducible(self, dist):
        a, _ = directed_generate_graph(dist, swap_iterations=2, config=ParallelConfig(seed=3))
        b, _ = directed_generate_graph(dist, swap_iterations=2, config=ParallelConfig(seed=3))
        assert a.same_graph(b)

    @given(st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_property_random_bidegrees(self, seed):
        d = random_bidegree(80, 240, seed)
        g, _ = directed_generate_graph(d, swap_iterations=2, config=ParallelConfig(seed=seed))
        assert g.is_simple()
