"""BOM and CRLF tolerance in the directed loaders.

The directed text parsers share :mod:`repro.graph.io`'s low-level
table reader, so they inherit the same Windows-file tolerances — these
tests pin that inheritance down rather than re-prove the mechanism.
"""

import numpy as np
import pytest

from repro.directed.io import load_arc_list, load_bidegree_distribution
from repro.graph.edgelist import EdgeListFormatError

BOM = "\ufeff"


class TestDirectedBom:
    def test_arc_list_with_bom_and_crlf(self, tmp_path):
        path = tmp_path / "arcs.txt"
        path.write_bytes((BOM + "# directed n=4\r\n0 1\r\n2 3\n").encode("utf-8"))
        g = load_arc_list(path)
        assert g.n == 4
        assert g.m == 2
        np.testing.assert_array_equal(g.u, [0, 2])

    def test_bidegree_with_bom(self, tmp_path):
        path = tmp_path / "deg.txt"
        path.write_bytes((BOM + "1 1 2\r\n2 2 1\n").encode("utf-8"))
        dist = load_bidegree_distribution(path)
        assert dist.n == 3

    def test_line_numbers_survive_bom_and_crlf(self, tmp_path):
        path = tmp_path / "arcs.txt"
        path.write_bytes((BOM + "0 1\r\n1 2\r\noops\r\n").encode("utf-8"))
        with pytest.raises(EdgeListFormatError) as exc:
            load_arc_list(path)
        assert exc.value.line == 3

    def test_bidegree_bad_line_number(self, tmp_path):
        path = tmp_path / "deg.txt"
        path.write_bytes((BOM + "1 1 2\r\n2 two 1\r\n").encode("utf-8"))
        with pytest.raises(EdgeListFormatError) as exc:
            load_bidegree_distribution(path)
        assert exc.value.line == 2
