"""Tests for directed I/O and statistics."""

import numpy as np
import pytest

from repro.directed.degree import DirectedDegreeDistribution
from repro.directed.edgelist import DirectedEdgeList
from repro.directed.io import (
    load_arc_list,
    load_bidegree_distribution,
    save_arc_list,
    save_bidegree_distribution,
)
from repro.directed.stats import (
    in_out_degree_correlation,
    mutual_arc_count,
    reciprocity,
)


class TestArcListIO:
    def test_text_roundtrip(self, tmp_path):
        g = DirectedEdgeList([0, 1, 2], [1, 2, 0], n=5)
        path = tmp_path / "arcs.txt"
        save_arc_list(g, path)
        back = load_arc_list(path)
        assert back.same_graph(g)
        assert back.n == 5

    def test_npz_roundtrip(self, tmp_path):
        g = DirectedEdgeList([3, 3], [0, 1])
        path = tmp_path / "arcs.npz"
        save_arc_list(g, path)
        back = load_arc_list(path)
        np.testing.assert_array_equal(back.u, g.u)
        np.testing.assert_array_equal(back.v, g.v)

    def test_orientation_preserved(self, tmp_path):
        g = DirectedEdgeList([1], [0], n=2)
        path = tmp_path / "a.txt"
        save_arc_list(g, path)
        back = load_arc_list(path)
        assert back.u[0] == 1 and back.v[0] == 0

    def test_empty(self, tmp_path):
        g = DirectedEdgeList([], [], n=3)
        path = tmp_path / "empty.txt"
        save_arc_list(g, path)
        back = load_arc_list(path)
        assert back.m == 0 and back.n == 3


class TestBidegreeIO:
    def test_roundtrip(self, tmp_path):
        d = DirectedDegreeDistribution([0, 1, 2], [2, 1, 0], [2, 2, 2])
        path = tmp_path / "bideg.txt"
        save_bidegree_distribution(d, path)
        assert load_bidegree_distribution(path) == d

    def test_empty(self, tmp_path):
        d = DirectedDegreeDistribution([], [], [])
        path = tmp_path / "e.txt"
        save_bidegree_distribution(d, path)
        assert load_bidegree_distribution(path).n == 0


class TestReciprocity:
    def test_fully_reciprocal(self):
        g = DirectedEdgeList([0, 1, 1, 2], [1, 0, 2, 1])
        assert reciprocity(g) == 1.0
        assert mutual_arc_count(g) == 4

    def test_no_reciprocity(self):
        g = DirectedEdgeList([0, 1, 2], [1, 2, 0])  # directed cycle
        assert reciprocity(g) == 0.0

    def test_half(self):
        g = DirectedEdgeList([0, 1, 2, 3], [1, 0, 3, 2][:4])
        # arcs 0->1, 1->0 reciprocal; 2->3, 3->2 reciprocal => 1.0; adjust:
        g = DirectedEdgeList([0, 1, 2], [1, 0, 3])
        assert reciprocity(g) == pytest.approx(2 / 3)

    def test_self_loops_excluded(self):
        g = DirectedEdgeList([0, 1, 1], [0, 2, 2])  # loop + dup arcs
        assert reciprocity(g) == 0.0

    def test_empty(self):
        assert reciprocity(DirectedEdgeList([], [], n=2)) == 0.0

    def test_swaps_destroy_reciprocity(self):
        """Bidegree-preserving randomization drives reciprocity to its
        null level — the directed example's headline measurement."""
        from repro.directed import directed_swap_edges
        from repro.parallel.runtime import ParallelConfig

        rng = np.random.default_rng(0)
        u = rng.integers(0, 60, 150)
        v = rng.integers(0, 60, 150)
        base = DirectedEdgeList(u[u != v], v[u != v], 60).simplify()
        g = DirectedEdgeList(
            np.concatenate([base.u, base.v]), np.concatenate([base.v, base.u]), 60
        ).simplify()
        assert reciprocity(g) == 1.0
        null = directed_swap_edges(g, 10, ParallelConfig(seed=1))
        assert reciprocity(null) < 0.5


class TestInOutCorrelation:
    def test_bounds(self):
        rng = np.random.default_rng(1)
        g = DirectedEdgeList(rng.integers(0, 30, 100), rng.integers(0, 30, 100))
        assert -1.0 <= in_out_degree_correlation(g) <= 1.0

    def test_perfectly_correlated(self):
        # reciprocal star: out == in per vertex, degrees vary
        g = DirectedEdgeList([0, 1, 0, 2, 0, 3], [1, 0, 2, 0, 3, 0])
        assert in_out_degree_correlation(g) == pytest.approx(1.0)

    def test_anticorrelated_bipartite_flow(self):
        # sources only emit, sinks only receive
        g = DirectedEdgeList([0, 0, 1, 1], [2, 3, 2, 3])
        assert in_out_degree_correlation(g) < 0

    def test_invariant_under_directed_swaps(self):
        """The bidegree-preserving null model fixes this statistic."""
        from repro.directed import directed_swap_edges
        from repro.parallel.runtime import ParallelConfig

        rng = np.random.default_rng(2)
        u = rng.integers(0, 50, 200)
        v = rng.integers(0, 50, 200)
        g = DirectedEdgeList(u[u != v], v[u != v], 50).simplify()
        before = in_out_degree_correlation(g)
        after = in_out_degree_correlation(
            directed_swap_edges(g, 5, ParallelConfig(seed=3))
        )
        assert after == pytest.approx(before, abs=1e-12)

    def test_degenerate(self):
        assert in_out_degree_correlation(DirectedEdgeList([], [], n=1)) == 0.0
