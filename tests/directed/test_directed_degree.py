"""Tests for bidegree distributions and directed graphicality."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.directed.degree import DirectedDegreeDistribution, is_digraphical
from repro.directed.edgelist import DirectedEdgeList
from repro.directed.havel_hakimi import kleitman_wang_graph


class TestIsDigraphical:
    def test_empty(self):
        assert is_digraphical([], [])

    def test_single_arc(self):
        assert is_digraphical([1, 0], [0, 1])

    def test_cycle(self):
        assert is_digraphical([1, 1, 1], [1, 1, 1])

    def test_unbalanced_sums(self):
        assert not is_digraphical([2, 0], [0, 1])

    def test_out_degree_too_large(self):
        assert not is_digraphical([2, 0], [1, 1])

    def test_complete_digraph(self):
        assert is_digraphical([2, 2, 2], [2, 2, 2])

    def test_impossible_concentration(self):
        # one vertex wants out 3 but only 3 others exist... n=4 ok; n=3 not
        assert not is_digraphical([3, 0, 0], [0, 1, 2])

    def test_negative(self):
        assert not is_digraphical([-1, 1], [0, 0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            is_digraphical([1], [1, 0])

    @given(st.integers(0, 2**31), st.integers(2, 8))
    @settings(max_examples=150, deadline=None)
    def test_property_matches_kleitman_wang(self, seed, k):
        """FCA condition and the constructive realization must agree."""
        rng = np.random.default_rng(seed)
        o = rng.integers(0, k, k)
        i = rng.integers(0, k, k)
        if o.sum() != i.sum() or o.sum() == 0 or ((o == 0) & (i == 0)).any():
            return
        fca = is_digraphical(o, i)
        try:
            kleitman_wang_graph(DirectedDegreeDistribution.from_sequences(o, i))
            kw = True
        except ValueError:
            kw = False
        assert fca == kw

    def test_real_digraphs_always_digraphical(self):
        rng = np.random.default_rng(3)
        g = DirectedEdgeList(rng.integers(0, 30, 100), rng.integers(0, 30, 100)).simplify()
        assert is_digraphical(g.out_degrees(), g.in_degrees())


class TestDirectedDegreeDistribution:
    def test_from_sequences(self):
        d = DirectedDegreeDistribution.from_sequences([1, 1, 0], [0, 1, 1])
        assert d.n == 3
        assert d.m == 2
        assert d.n_classes == 3

    def test_from_graph_roundtrip(self):
        g = DirectedEdgeList([0, 1, 2], [1, 2, 0])
        d = DirectedDegreeDistribution.from_graph(g)
        out_seq, in_seq = d.expand()
        np.testing.assert_array_equal(np.sort(out_seq), np.sort(g.out_degrees()))
        np.testing.assert_array_equal(np.sort(in_seq), np.sort(g.in_degrees()))

    def test_rejects_unbalanced(self):
        with pytest.raises(ValueError, match="stub total"):
            DirectedDegreeDistribution([1], [2], [1])

    def test_rejects_zero_zero_class(self):
        with pytest.raises(ValueError):
            DirectedDegreeDistribution([0], [0], [1])

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            DirectedDegreeDistribution([2, 1], [0, 1], [1, 2])

    def test_zero_zero_dropped_in_from_sequences(self):
        d = DirectedDegreeDistribution.from_sequences([1, 0, 0], [0, 1, 0])
        assert d.n == 2

    def test_class_offsets(self):
        d = DirectedDegreeDistribution([0, 1], [1, 0], [3, 3])
        np.testing.assert_array_equal(d.class_offsets(), [0, 3, 6])

    def test_equality(self):
        a = DirectedDegreeDistribution([1], [1], [2])
        b = DirectedDegreeDistribution([1], [1], [2])
        assert a == b

    def test_repr(self):
        d = DirectedDegreeDistribution([1], [1], [4])
        assert "classes=1" in repr(d)
