"""Tests for the directed edge-list container."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.directed.edgelist import DirectedEdgeList, pack_arcs, unpack_arcs


class TestPackArcs:
    def test_order_sensitive(self):
        a = pack_arcs(np.asarray([1]), np.asarray([2]))
        b = pack_arcs(np.asarray([2]), np.asarray([1]))
        assert a[0] != b[0]

    def test_roundtrip(self):
        u = np.asarray([3, 0, 9])
        v = np.asarray([1, 5, 9])
        uu, vv = unpack_arcs(pack_arcs(u, v))
        np.testing.assert_array_equal(uu, u)
        np.testing.assert_array_equal(vv, v)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pack_arcs(np.asarray([-1]), np.asarray([0]))

    @given(st.lists(st.tuples(st.integers(0, 2**20), st.integers(0, 2**20)), max_size=40))
    def test_property_roundtrip(self, pairs):
        if not pairs:
            return
        u = np.asarray([p[0] for p in pairs])
        v = np.asarray([p[1] for p in pairs])
        uu, vv = unpack_arcs(pack_arcs(u, v))
        np.testing.assert_array_equal(uu, u)
        np.testing.assert_array_equal(vv, v)


class TestDirectedEdgeList:
    def test_basic(self):
        g = DirectedEdgeList([0, 1], [1, 0])
        assert g.n == 2 and g.m == 2
        assert g.is_simple()  # antiparallel arcs are legal

    def test_self_loop_not_simple(self):
        assert not DirectedEdgeList([0], [0]).is_simple()

    def test_duplicate_arc_not_simple(self):
        g = DirectedEdgeList([0, 0], [1, 1])
        assert g.count_multi_arcs() == 1
        assert not g.is_simple()

    def test_reversed_arcs_not_duplicates(self):
        assert DirectedEdgeList([0, 1], [1, 0]).count_multi_arcs() == 0

    def test_simplify(self):
        g = DirectedEdgeList([0, 0, 1, 2], [1, 1, 0, 2])
        s = g.simplify()
        assert s.is_simple()
        assert s.m == 2  # {0->1, 1->0}; loop 2->2 dropped

    def test_degrees(self):
        g = DirectedEdgeList([0, 0, 1], [1, 2, 2], n=3)
        np.testing.assert_array_equal(g.out_degrees(), [2, 1, 0])
        np.testing.assert_array_equal(g.in_degrees(), [0, 1, 2])

    def test_degree_sums_equal_m(self):
        rng = np.random.default_rng(0)
        g = DirectedEdgeList(rng.integers(0, 9, 40), rng.integers(0, 9, 40))
        assert g.out_degrees().sum() == g.m == g.in_degrees().sum()

    def test_same_graph_orientation_sensitive(self):
        a = DirectedEdgeList([0], [1], n=2)
        b = DirectedEdgeList([1], [0], n=2)
        assert not a.same_graph(b)
        assert a.same_graph(a.copy())

    def test_keys_roundtrip(self):
        g = DirectedEdgeList([4, 2], [0, 7])
        g2 = DirectedEdgeList.from_keys(g.keys(), g.n)
        assert g2.same_graph(g)

    def test_validation(self):
        with pytest.raises(ValueError):
            DirectedEdgeList([0, 1], [1])
        with pytest.raises(ValueError):
            DirectedEdgeList([-1], [0])
        with pytest.raises(ValueError):
            DirectedEdgeList([5], [0], n=2)
