"""Tests for the ASCII figure renderers."""

import numpy as np
import pytest

from repro.bench.figures import ascii_bar_chart, ascii_line_chart, sparkline


class TestSparkline:
    def test_length(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_shape(self):
        s = sparkline([0, 1, 2, 3])
        assert s[0] == "▁" and s[-1] == "█"


class TestBarChart:
    def test_rows(self):
        out = ascii_bar_chart(["a", "bb"], [1.0, 2.0], title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 3
        assert "█" in lines[1]

    def test_longest_bar_for_peak(self):
        out = ascii_bar_chart(["a", "b"], [1.0, 4.0], width=8)
        bars = [line.count("█") for line in out.splitlines()]
        assert bars[1] == max(bars)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert "(empty)" in ascii_bar_chart([], [])

    def test_zero_values(self):
        out = ascii_bar_chart(["z"], [0.0])
        assert "z" in out


class TestLineChart:
    def test_basic_render(self):
        out = ascii_line_chart([0, 1, 2], {"s": [1.0, 2.0, 3.0]}, width=20, height=5)
        lines = out.splitlines()
        assert any("o" in line for line in lines)
        assert "o=s" in lines[-1]

    def test_multiple_series_distinct_markers(self):
        out = ascii_line_chart(
            [0, 1], {"a": [0.0, 1.0], "b": [1.0, 0.0]}, width=10, height=4
        )
        assert "o=a" in out and "x=b" in out

    def test_logy(self):
        out = ascii_line_chart([0, 1, 2], {"s": [1.0, 10.0, 100.0]}, logy=True)
        assert "100" in out

    def test_constant_series(self):
        out = ascii_line_chart([0, 1], {"s": [2.0, 2.0]})
        assert "o" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_line_chart([0, 1], {"s": [1.0]})

    def test_empty_series_dict(self):
        with pytest.raises(ValueError):
            ascii_line_chart([0], {})

    def test_title(self):
        out = ascii_line_chart([0, 1], {"s": [0.0, 1.0]}, title="my chart")
        assert out.splitlines()[0] == "my chart"
