"""The ``--reap-dry-run`` CLI flag: report stale artifacts, delete nothing."""

import subprocess
import sys

import pytest

from repro.bench.cli import main


@pytest.fixture(autouse=True)
def _isolated_manifest_dir(tmp_path, monkeypatch):
    """Point the shm manifest sweep at an empty dir so the host's real
    stale segments (if any) never leak into assertions."""
    d = tmp_path / "manifests"
    d.mkdir()
    monkeypatch.setenv("REPRO_SHM_MANIFEST_DIR", str(d))


def _dead_pid() -> int:
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestReapDryRun:
    def test_nothing_stale(self, capsys):
        assert main(["--reap-dry-run"]) == 0
        out = capsys.readouterr().out
        assert "nothing stale" in out
        assert "0 artifacts" in out

    def test_reports_dead_writer_tmp_file_without_deleting(
        self, tmp_path, capsys
    ):
        ck = tmp_path / "ck"
        ck.mkdir()
        stale = ck / f".tmp-{_dead_pid()}-snap.npz"
        stale.write_bytes(b"x" * 512)
        assert main(["--reap-dry-run", "--checkpoint-dir", str(ck)]) == 0
        out = capsys.readouterr().out
        assert "a reap would delete 1 artifact(s)" in out
        assert str(stale) in out
        assert "512" in out
        assert "checkpoint" in out
        # dry run: the artifact must survive
        assert stale.exists()
        assert stale.stat().st_size == 512

    def test_live_writer_tmp_file_not_reported(self, tmp_path, capsys):
        import os

        ck = tmp_path / "ck"
        ck.mkdir()
        live = ck / f".tmp-{os.getpid()}-snap.npz"
        live.write_bytes(b"x")
        assert main(["--reap-dry-run", "--checkpoint-dir", str(ck)]) == 0
        out = capsys.readouterr().out
        assert "nothing stale" in out
        assert live.exists()

    def test_dry_run_skips_experiments(self, capsys):
        """The flag short-circuits before any experiment runs."""
        assert main(["--reap-dry-run", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig" not in out
