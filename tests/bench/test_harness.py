"""Tests for the experiment harness."""

import numpy as np
import pytest

from repro.bench.harness import (
    GENERATORS,
    ExperimentResult,
    Timer,
    format_table,
    generate_with_method,
    uniform_reference,
)
from repro.core.swap import SwapStats
from repro.parallel.runtime import ParallelConfig


class TestTimer:
    def test_measures_positive(self):
        with Timer() as t:
            sum(range(1000))
        assert t.seconds >= 0


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_empty_rows(self):
        assert "a" in format_table(["a"], [])


class TestExperimentResult:
    def test_add_and_render(self):
        r = ExperimentResult("x", "desc", ["col1", "col2"])
        r.add(1, 2)
        out = r.render()
        assert "x: desc" in out and "col1" in out

    def test_add_wrong_arity(self):
        r = ExperimentResult("x", "d", ["a"])
        with pytest.raises(ValueError):
            r.add(1, 2)


class TestGenerators:
    def test_four_methods(self):
        assert set(GENERATORS) == {"CL O(m)", "O(m) simple", "O(n^2) edgeskip", "ours"}

    @pytest.mark.parametrize("method", list(GENERATORS))
    def test_each_runs(self, method, small_dist, cfg):
        g = generate_with_method(method, small_dist, cfg)
        assert g.n == small_dist.n

    @pytest.mark.parametrize("method", ["O(m) simple", "O(n^2) edgeskip", "ours"])
    def test_simple_methods_are_simple(self, method, skewed_dist, cfg):
        assert generate_with_method(method, skewed_dist, cfg).is_simple()

    def test_swap_iterations_applied(self, small_dist, cfg):
        stats = SwapStats()
        generate_with_method("ours", small_dist, cfg, swap_iterations=3, stats=stats)
        assert stats.iterations == 3

    def test_unknown_method(self, small_dist, cfg):
        with pytest.raises(KeyError):
            generate_with_method("quantum", small_dist, cfg)


class TestUniformReference:
    def test_simple_and_exact_degrees(self, skewed_dist, cfg):
        g = uniform_reference(skewed_dist, cfg, swap_iterations=4)
        assert g.is_simple()
        np.testing.assert_array_equal(
            np.sort(g.degree_sequence()), np.sort(skewed_dist.expand())
        )
