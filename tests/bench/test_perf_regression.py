"""Regression gate over the committed performance baseline.

Two tiers:

- The unmarked tests are tier-1: they validate the *committed*
  ``BENCH_suite.json`` — schema version, coverage (≥ 3 datasets × ≥ 2
  backends × autotune off/on), and payload sanity — without running any
  benchmark, so the gate's contract is checked on every test run.
- ``test_no_phase_regression`` is ``perf``-marked (excluded from the
  default run by the ``addopts`` marker filter): it compares a freshly
  *measured* suite against the committed baseline with tolerance bands.
  CI runs it as its own job, pointing ``REPRO_BENCH_SUITE`` at the
  ``BENCH_suite.json`` its bench step just produced; without the env var
  the test runs the suite itself.

Tolerance: a phase regresses when ``measured > baseline * (1 + TOL) +
FLOOR``.  The relative band (20%) absorbs ordinary timer noise; the
absolute floor keeps sub-millisecond phases — where 20% is micro-seconds
— from flapping on scheduler jitter.
"""

import json
import os
from pathlib import Path

import pytest

BASELINE = Path(__file__).resolve().parents[2] / "BENCH_suite.json"

#: relative tolerance band per phase (the CI gate's contract: >20% fails)
TOL = 0.20
#: absolute slack in seconds, so tiny phases don't flap on jitter
FLOOR = 0.25

REQUIRED_ENTRY_KEYS = {
    "dataset", "backend", "autotune", "edges", "total_seconds",
    "phase_seconds", "edges_per_s",
}


def load_baseline() -> dict:
    assert BASELINE.exists(), (
        "committed baseline BENCH_suite.json is missing; regenerate with "
        "`repro-experiments suite`"
    )
    return json.loads(BASELINE.read_text())


class TestCommittedBaseline:
    """Tier-1 checks of the committed BENCH_suite.json contract."""

    def test_schema_version(self):
        from repro.bench.harness import SUITE_SCHEMA

        payload = load_baseline()
        assert payload["benchmark"] == "suite"
        assert payload["schema"] == SUITE_SCHEMA

    def test_coverage_matrix(self):
        """The acceptance floor: ≥ 3 datasets × ≥ 2 backends, both
        autotune modes, every combination present."""
        entries = load_baseline()["entries"]
        datasets = {e["dataset"] for e in entries}
        backends = {e["backend"] for e in entries}
        assert len(datasets) >= 3, datasets
        assert len(backends) >= 2, backends
        seen = {(e["dataset"], e["backend"], e["autotune"]) for e in entries}
        for d in datasets:
            for b in backends:
                for a in (False, True):
                    assert (d, b, a) in seen, f"missing suite cell {(d, b, a)}"

    def test_entry_payloads_sane(self):
        for e in load_baseline()["entries"]:
            assert REQUIRED_ENTRY_KEYS <= set(e), e
            assert e["edges"] > 0
            assert e["total_seconds"] > 0
            assert e["edges_per_s"] > 0
            assert e["phase_seconds"], e
            assert all(s >= 0 for s in e["phase_seconds"].values())


def _measured_suite() -> dict:
    """The freshly measured payload: from ``REPRO_BENCH_SUITE`` or a run."""
    path = os.environ.get("REPRO_BENCH_SUITE")
    if path:
        return json.loads(Path(path).read_text())
    from repro.bench.experiments import suite

    return suite().series["bench"]


@pytest.mark.perf
def test_no_phase_regression():
    """No suite cell's phase (or total) may exceed the tolerance band."""
    baseline = load_baseline()
    measured = _measured_suite()
    base_by_cell = {
        (e["dataset"], e["backend"], e["autotune"]): e
        for e in baseline["entries"]
    }
    regressions = []
    compared = 0
    for entry in measured["entries"]:
        cell = (entry["dataset"], entry["backend"], entry["autotune"])
        base = base_by_cell.get(cell)
        if base is None:
            continue  # new cell: nothing to regress against
        compared += 1
        checks = [("total", base["total_seconds"], entry["total_seconds"])]
        checks += [
            (phase, base_s, entry["phase_seconds"].get(phase, 0.0))
            for phase, base_s in base["phase_seconds"].items()
        ]
        for phase, base_s, new_s in checks:
            if new_s > base_s * (1.0 + TOL) + FLOOR:
                regressions.append(
                    f"{cell} {phase}: {new_s:.4f}s vs baseline "
                    f"{base_s:.4f}s (>{TOL:.0%} + {FLOOR}s)"
                )
    assert compared > 0, "measured suite shares no cells with the baseline"
    assert not regressions, "\n".join(regressions)
