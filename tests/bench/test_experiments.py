"""Smoke + shape tests for the experiment drivers.

Full-size runs live in ``benchmarks/``; here every driver runs at a tiny
scale and its *shape* claims (who wins, what converges) are asserted.
"""

import numpy as np
import pytest

from repro.bench import experiments
from repro.datasets.synthetic import deterministic_powerlaw

TINY = deterministic_powerlaw(n=400, d_avg=3.8, d_max=80, n_classes=16)


class TestFig1:
    def test_shapes_and_overflow(self):
        r = experiments.fig1(TINY, samples=4, swap_iterations=5)
        assert r.series["fraction_exceeding_1"] > 0  # CL formula overflows
        emp = r.series["uniform_random"]
        assert (emp >= 0).all() and (emp <= 1).all()
        assert len(r.rows) == TINY.n_classes


class TestFig2:
    def test_erased_error_nonzero(self):
        r = experiments.fig2(TINY, samples=4)
        err = r.series["pct_error"]
        assert np.abs(err).max() > 1.0  # visible distortion
        assert len(err) == TINY.n_classes


class TestTable1:
    def test_all_rows(self):
        r = experiments.table1()
        assert len(r.rows) == 8
        for row in r.rows:
            davg_pub, davg_twin = row[3], row[8]
            assert davg_twin == pytest.approx(davg_pub, rel=0.03)


class TestFig3:
    def test_ours_beats_other_simple_generators(self):
        r = experiments.fig3(datasets=("Meso",), samples=3)
        by_method = {row[1]: row for row in r.rows}
        ours_edge_err = by_method["ours"][2]
        erased_edge_err = by_method["O(m) simple"][2]
        bernoulli_edge_err = by_method["O(n^2) edgeskip"][2]
        assert ours_edge_err < erased_edge_err
        assert ours_edge_err < bernoulli_edge_err
        # O(m) matches the edge count exactly (it draws exactly 2m stubs)
        assert by_method["CL O(m)"][2] == pytest.approx(0.0)


class TestFig4:
    def test_om_converges(self):
        r = experiments.fig4(
            "Meso", iterations=(0, 2, 6, 12), samples=2, baseline_samples=2,
            baseline_iterations=16,
        )
        om = r.series["methods"]["CL O(m)"]
        assert om[0] > om[-1]  # multigraph error decays with swaps
        ours = r.series["methods"]["ours"]
        # ours ends near the measurement noise floor
        assert ours[-1] < 3 * r.series["noise_floor"] + 0.05


class TestFig5:
    def test_rows_and_positive_times(self):
        r = experiments.fig5(datasets=("Meso",))
        assert len(r.rows) == 4
        assert all(row[2] > 0 for row in r.rows)


class TestFig6:
    def test_phase_breakdown(self):
        r = experiments.fig6(datasets=("Meso", "as20"))
        assert r.rows[-1][0] == "AVERAGE"
        totals = r.series["totals"]
        assert set(totals) == {"probabilities", "edge_generation", "swap"}
        # the paper's observation: probability generation is the cheap phase
        assert totals["probabilities"] < totals["swap"]


class TestSec8c:
    def test_swap_throughput(self):
        r = experiments.sec8c("LiveJournal", iterations=2, scale=0.002)
        fracs = [row[1] for row in r.rows]
        assert len(fracs) == 2
        assert fracs[1] > fracs[0]  # cumulative fraction grows
        assert fracs[0] > 0.5  # most edges swap in the first iteration
        assert r.series["speedup_16_threads"] > 4


class TestScaling:
    def test_speedup_monotone(self):
        r = experiments.scaling("Meso", thread_counts=(1, 4, 16), swap_iterations=1, scale=1.0)
        speedups = [row[1] for row in r.rows]
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[1] > 2.0
        assert speedups[2] > speedups[1]


class TestLFRExperiment:
    def test_mixing_tracks_mu(self):
        r = experiments.lfr_experiment(mus=(0.1, 0.6), n=400)
        measured = [row[1] for row in r.rows]
        assert measured[1] > measured[0]


class TestCLI:
    def test_list(self, capsys):
        from repro.bench.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table1" in out

    def test_unknown_experiment(self, capsys):
        from repro.bench.cli import main

        assert main(["nope"]) == 2

    def test_run_one(self, capsys):
        from repro.bench.cli import main

        assert main(["table1"]) == 0
        assert "table1" in capsys.readouterr().out


class TestExtensionExperiments:
    def test_directed(self):
        r = experiments.directed_experiment(n=200, arcs=800, swap_iterations=2)
        rows = {row[0]: row for row in r.rows}
        om = rows["directed CL O(m)"]
        ours = rows["directed ours"]
        assert om[2] + om[3] > 0  # O(m) has defects
        assert ours[2] == ours[3] == 0  # pipeline simple

    def test_corrections(self):
        r = experiments.corrections_experiment(samples=2)
        rows = {row[0]: row for row in r.rows}
        assert rows["corrected CL"][1] < rows["naive CL"][1]  # degrees fixed
        assert rows["corrected CL"][2] > 0.05  # bias remains

    def test_distributed(self):
        r = experiments.distributed_experiment(ranks=(1, 4), scale=0.001)
        msgs = [row[2] for row in r.rows]
        assert msgs[1] > msgs[0]

    def test_mixing(self):
        r = experiments.mixing_experiment(scale=0.3)
        metrics = dict(r.rows)
        assert metrics["iterations_to_999_swapped"] >= 1
        assert 0 < metrics["acceptance_rate"] <= 1

    def test_cli_runs_extensions(self, capsys):
        from repro.bench.cli import main

        assert main(["directed"]) == 0
        assert "directed" in capsys.readouterr().out

    def test_cli_out_writes_artifacts(self, tmp_path, capsys):
        from repro.bench.cli import main

        assert main(["table1", "--out", str(tmp_path / "res")]) == 0
        capsys.readouterr()
        text = (tmp_path / "res" / "table1.txt").read_text()
        assert "table1" in text


class TestDurable:
    def test_checkpoint_then_resume_same_digest(self, tmp_path):
        first = experiments.durable(
            swap_iterations=4, checkpoint_every=1, checkpoint_dir=str(tmp_path)
        )
        resumed = experiments.durable(
            swap_iterations=4,
            checkpoint_every=1,
            checkpoint_dir=str(tmp_path),
            resume=True,
        )
        assert first.series["digest"] == resumed.series["digest"]
        assert not first.series["report"].resumed
        assert resumed.series["report"].resumed

    def test_ephemeral_run_without_dir(self):
        result = experiments.durable(swap_iterations=2, checkpoint_every=1)
        assert result.series["digest"]

    def test_cli_flags(self, tmp_path, capsys):
        from repro.bench.cli import main

        out = tmp_path / "ck"
        assert main(["durable", "--checkpoint-dir", str(out)]) == 0
        assert "durable" in capsys.readouterr().out
        assert main(["durable", "--checkpoint-dir", str(out), "--resume"]) == 0
        assert "durable" in capsys.readouterr().out

    def test_cli_resume_requires_dir(self, capsys):
        from repro.bench.cli import main

        with pytest.raises(SystemExit):
            main(["durable", "--resume"])
