"""Cross-cutting randomized property tests.

Composite hypothesis strategies generate arbitrary graphical
distributions (by sampling a random simple graph and harvesting its
degrees — graphicality for free), then assert the invariants that must
hold across the *whole* library surface: every generator, every swap
space, every backend, every persistence format.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import DegreeDistribution, EdgeList, ParallelConfig, generate_graph, swap_edges


@st.composite
def graphical_distributions(draw, max_n=60, max_m=150):
    """A graphical DegreeDistribution harvested from a random graph."""
    seed = draw(st.integers(0, 2**31))
    n = draw(st.integers(4, max_n))
    m = draw(st.integers(2, max_m))
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, 3 * m)
    v = rng.integers(0, n, 3 * m)
    keep = u != v
    g = EdgeList(u[keep], v[keep], n).simplify()
    if g.m < 2:
        g = EdgeList([0, 1, 2], [1, 2, 3], 4)
    return DegreeDistribution.from_graph(g)


@st.composite
def simple_graphs(draw, max_n=40, max_m=120):
    """An arbitrary simple graph."""
    seed = draw(st.integers(0, 2**31))
    n = draw(st.integers(2, max_n))
    m = draw(st.integers(0, max_m))
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, 3 * m + 1)
    v = rng.integers(0, n, 3 * m + 1)
    keep = u != v
    return EdgeList(u[keep], v[keep], n).simplify()


class TestPipelineProperties:
    @given(graphical_distributions(), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_pipeline_always_simple_and_degree_faithful(self, dist, seed):
        g, report = generate_graph(
            dist, swap_iterations=2, config=ParallelConfig(seed=seed)
        )
        assert g.is_simple()
        assert g.n == dist.n
        # expected-edge accounting from the probability phase is coherent
        assert report.probabilities.total_expected_edges <= dist.m * 1.05 + 1

    @given(graphical_distributions())
    @settings(max_examples=20, deadline=None)
    def test_probability_invariants(self, dist):
        from repro.core.probabilities import expected_degrees, generate_probabilities

        res = generate_probabilities(dist)
        assert (res.P >= 0).all() and (res.P <= 1).all()
        got = expected_degrees(res.P, dist)
        # never overshoots: allocation is clamped from above
        assert (got <= dist.degrees + 1e-6).all()


class TestSwapProperties:
    @given(
        simple_graphs(),
        st.sampled_from(["simple", "loopy", "multigraph", "loopy_multigraph"]),
        st.integers(0, 2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_space_preserves_degrees(self, graph, space, seed):
        out = swap_edges(graph, 2, ParallelConfig(seed=seed), space=space)
        np.testing.assert_array_equal(
            np.sort(out.degree_sequence()), np.sort(graph.degree_sequence())
        )

    @given(simple_graphs(), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_simple_space_stays_simple(self, graph, seed):
        assert swap_edges(graph, 3, ParallelConfig(seed=seed)).is_simple()

    @given(simple_graphs(), st.integers(1, 8), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_distributed_agrees_on_invariants(self, graph, ranks, seed):
        from repro.distributed import distributed_swap_edges

        out, report = distributed_swap_edges(
            graph, 2, ranks, ParallelConfig(seed=seed)
        )
        assert out.is_simple()
        assert out.m == graph.m
        np.testing.assert_array_equal(
            np.sort(out.degree_sequence()), np.sort(graph.degree_sequence())
        )


class TestPersistenceProperties:
    @given(simple_graphs(), st.sampled_from(["txt", "npz", "metis"]))
    @settings(max_examples=20, deadline=None)
    def test_every_format_roundtrips(self, graph, fmt):
        import tempfile
        from pathlib import Path

        from repro.graph.io import (
            load_edge_list,
            load_metis,
            save_edge_list,
            save_metis,
        )

        with tempfile.TemporaryDirectory() as root:
            if fmt == "metis":
                path = Path(root) / "g.metis"
                save_metis(graph, path)
                back = load_metis(path)
            else:
                path = Path(root) / f"g.{fmt}"
                save_edge_list(graph, path)
                back = load_edge_list(path)
            assert back.same_graph(graph)
            assert back.n == graph.n

    @given(graphical_distributions())
    @settings(max_examples=20, deadline=None)
    def test_distribution_roundtrip(self, dist):
        import tempfile
        from pathlib import Path

        from repro.graph.io import load_degree_distribution, save_degree_distribution

        with tempfile.TemporaryDirectory() as root:
            path = Path(root) / "d.txt"
            save_degree_distribution(dist, path)
            assert load_degree_distribution(path) == dist


class TestStatisticsProperties:
    @given(simple_graphs())
    @settings(max_examples=20, deadline=None)
    def test_attachment_matrix_well_formed(self, graph):
        from repro.graph.stats import attachment_probability_matrix

        if graph.m == 0:
            return
        dist = DegreeDistribution.from_graph(graph)
        # relabel the graph to class ordering so matrices are defined
        from repro.bench.harness import uniform_reference

        g = uniform_reference(dist, ParallelConfig(seed=0), swap_iterations=1)
        P = attachment_probability_matrix(g, dist)
        assert (P >= 0).all() and (P <= 1).all()
        np.testing.assert_allclose(P, P.T)

    @given(simple_graphs())
    @settings(max_examples=20, deadline=None)
    def test_triangles_consistent_with_transitivity(self, graph):
        from repro.graph.csr import transitivity, triangle_count, wedge_count

        t = triangle_count(graph)
        w = wedge_count(graph)
        trans = transitivity(graph)
        if w == 0:
            assert trans == 0.0
        else:
            assert trans == pytest.approx(3 * t / w)
        assert 0.0 <= trans <= 1.0

    @given(simple_graphs())
    @settings(max_examples=20, deadline=None)
    def test_components_partition(self, graph):
        from repro.graph.components import component_sizes, connected_components

        comp = connected_components(graph)
        sizes = component_sizes(graph)
        assert sizes.sum() == graph.n
        if graph.m:
            assert (comp[graph.u] == comp[graph.v]).all()
