"""Tests for the configuration model and its repairs."""

import numpy as np
import pytest

from repro.generators.configuration import (
    configuration_model,
    erased_configuration_model,
    repeated_configuration_model,
)
from repro.graph.degree import DegreeDistribution


class TestConfigurationModel:
    def test_degrees_exact(self, skewed_dist):
        g = configuration_model(skewed_dist, 0)
        # stub matching realizes every degree exactly (loops count 2)
        np.testing.assert_array_equal(
            np.sort(g.degree_sequence()), np.sort(skewed_dist.expand())
        )

    def test_edge_count(self, skewed_dist):
        assert configuration_model(skewed_dist, 1).m == skewed_dist.m

    def test_reproducible(self, small_dist):
        a = configuration_model(small_dist, 5)
        b = configuration_model(small_dist, 5)
        np.testing.assert_array_equal(a.u, b.u)

    def test_skewed_rarely_simple(self, skewed_dist):
        """Expected multi-edges > 1 on skew => simple draws are rare."""
        simple = sum(
            configuration_model(skewed_dist, s).is_simple() for s in range(20)
        )
        assert simple <= 2


class TestErased:
    def test_simple(self, skewed_dist):
        assert erased_configuration_model(skewed_dist, 0).is_simple()

    def test_loses_edges_on_skew(self, skewed_dist):
        assert erased_configuration_model(skewed_dist, 0).m < skewed_dist.m


class TestRepeated:
    def test_succeeds_on_mild_distribution(self):
        dist = DegreeDistribution([2], [10])
        g, tries = repeated_configuration_model(dist, 0, max_tries=500)
        assert g.is_simple()
        assert tries >= 1

    def test_fails_on_skewed(self, skewed_dist):
        """The paper's point: repeated configuration is impractical."""
        with pytest.raises(RuntimeError, match="no simple graph"):
            repeated_configuration_model(skewed_dist, 0, max_tries=15)
