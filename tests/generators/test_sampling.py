"""Tests for weighted samplers (binary-search and alias)."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.generators.sampling import AliasSampler, BinarySearchSampler, make_sampler


@pytest.mark.parametrize("cls", [BinarySearchSampler, AliasSampler])
class TestSamplers:
    def test_validates_empty(self, cls):
        with pytest.raises(ValueError):
            cls([])

    def test_validates_negative(self, cls):
        with pytest.raises(ValueError):
            cls([1.0, -0.5])

    def test_validates_all_zero(self, cls):
        with pytest.raises(ValueError):
            cls([0.0, 0.0])

    def test_single_weight(self, cls):
        s = cls([3.0])
        assert (s.sample(20, 0) == 0).all()

    def test_zero_weight_never_drawn(self, cls):
        s = cls([1.0, 0.0, 1.0])
        draws = s.sample(2000, 1)
        assert not (draws == 1).any()

    def test_indices_in_range(self, cls):
        s = cls(np.arange(1, 11, dtype=float))
        draws = s.sample(1000, 2)
        assert draws.min() >= 0 and draws.max() < 10

    def test_reproducible(self, cls):
        s = cls([1, 2, 3])
        np.testing.assert_array_equal(s.sample(50, 9), s.sample(50, 9))

    def test_distribution_matches_weights(self, cls):
        weights = np.asarray([1.0, 2.0, 3.0, 4.0])
        s = cls(weights)
        draws = s.sample(40_000, 3)
        counts = np.bincount(draws, minlength=4)
        expected = weights / weights.sum() * len(draws)
        chi2 = ((counts - expected) ** 2 / expected).sum()
        assert sps.chi2.sf(chi2, 3) > 1e-4

    def test_skewed_weights(self, cls):
        weights = np.ones(100)
        weights[0] = 1000.0
        s = cls(weights)
        draws = s.sample(10_000, 4)
        frac = (draws == 0).mean()
        expect = 1000 / weights.sum()
        assert abs(frac - expect) < 0.02


class TestMakeSampler:
    def test_binary(self):
        assert isinstance(make_sampler([1.0], "binary"), BinarySearchSampler)

    def test_alias(self):
        assert isinstance(make_sampler([1.0], "alias"), AliasSampler)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_sampler([1.0], "magic")


class TestSamplersAgree:
    def test_same_distribution(self):
        """Both samplers realize the same weighted distribution."""
        weights = np.asarray([5.0, 1.0, 3.0, 0.5, 8.0])
        a = np.bincount(BinarySearchSampler(weights).sample(30_000, 0), minlength=5)
        b = np.bincount(AliasSampler(weights).sample(30_000, 0), minlength=5)
        # two-sample chi-square
        total = a + b
        expected_a = total * a.sum() / (a.sum() + b.sum())
        chi2 = (((a - expected_a) ** 2) / np.maximum(expected_a, 1)).sum()
        assert sps.chi2.sf(chi2, 4) > 1e-4
