"""Tests for the Erdős–Rényi edge-skipping generator."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.generators.erdos_renyi import erdos_renyi


class TestErdosRenyi:
    def test_p_zero(self):
        assert erdos_renyi(10, 0.0, 0).m == 0

    def test_p_one_complete(self):
        g = erdos_renyi(8, 1.0, 0)
        assert g.m == 28
        assert g.is_simple()

    def test_always_simple(self):
        for s in range(5):
            assert erdos_renyi(40, 0.3, s).is_simple()

    def test_n_zero(self):
        assert erdos_renyi(0, 0.5, 0).m == 0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5, 0)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            erdos_renyi(-1, 0.5, 0)

    def test_edge_count_binomial(self):
        n, p = 60, 0.1
        end = n * (n - 1) // 2
        sizes = [erdos_renyi(n, p, s).m for s in range(200)]
        se = np.sqrt(end * p * (1 - p) / len(sizes))
        assert abs(np.mean(sizes) - end * p) < 5 * se

    def test_matches_networkx_distribution(self):
        """Cross-check against networkx's G(n, p) sampler."""
        import networkx as nx

        n, p = 50, 0.15
        ours = np.mean([erdos_renyi(n, p, s).m for s in range(150)])
        theirs = np.mean(
            [nx.gnp_random_graph(n, p, seed=s).number_of_edges() for s in range(150)]
        )
        assert abs(ours - theirs) < 8

    def test_degree_distribution_poisson_like(self):
        g = erdos_renyi(500, 0.02, 3)
        deg = g.degree_sequence()
        # mean degree ~ (n-1) p ~ 10
        assert abs(deg.mean() - 499 * 0.02) < 1.0
