"""Tests for the Havel–Hakimi realization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.synthetic import sampled_powerlaw
from repro.generators.havel_hakimi import havel_hakimi_graph
from repro.graph.degree import DegreeDistribution


class TestHavelHakimi:
    def test_realizes_exactly(self, small_dist):
        g = havel_hakimi_graph(small_dist)
        assert g.is_simple()
        np.testing.assert_array_equal(
            np.sort(g.degree_sequence()), np.sort(small_dist.expand())
        )

    def test_skewed(self, skewed_dist):
        g = havel_hakimi_graph(skewed_dist)
        assert g.is_simple()
        np.testing.assert_array_equal(
            np.sort(g.degree_sequence()), np.sort(skewed_dist.expand())
        )

    def test_degree_ordered_labelling(self, small_dist):
        """Vertex ids follow the library-wide class labelling."""
        g = havel_hakimi_graph(small_dist)
        deg = g.degree_sequence()
        np.testing.assert_array_equal(deg, small_dist.expand())

    def test_regular(self):
        dist = DegreeDistribution([3], [8])
        g = havel_hakimi_graph(dist)
        np.testing.assert_array_equal(g.degree_sequence(), np.full(8, 3))

    def test_complete_graph(self):
        dist = DegreeDistribution([5], [6])
        g = havel_hakimi_graph(dist)
        assert g.m == 15

    def test_star(self):
        dist = DegreeDistribution([1, 5], [5, 1])
        g = havel_hakimi_graph(dist)
        assert g.m == 5

    def test_empty(self):
        g = havel_hakimi_graph(DegreeDistribution([], []))
        assert g.m == 0

    def test_non_graphical_raises(self):
        dist = DegreeDistribution([1, 3], [1, 3])  # [3,3,3,1]
        with pytest.raises(ValueError, match="not graphical"):
            havel_hakimi_graph(dist)

    def test_deterministic(self, skewed_dist):
        a = havel_hakimi_graph(skewed_dist)
        b = havel_hakimi_graph(skewed_dist)
        np.testing.assert_array_equal(a.u, b.u)

    @given(st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_property_random_powerlaws(self, seed):
        dist = sampled_powerlaw(120, 2.0, 1, 40, seed=seed)
        if not dist.is_graphical():
            return
        g = havel_hakimi_graph(dist)
        assert g.is_simple()
        np.testing.assert_array_equal(
            np.sort(g.degree_sequence()), np.sort(dist.expand())
        )

    def test_matches_networkx_degree_sequence(self):
        """Same realizability as networkx's HH implementation."""
        import networkx as nx

        dist = sampled_powerlaw(60, 2.2, 1, 15, seed=5)
        ours = havel_hakimi_graph(dist)
        theirs = nx.havel_hakimi_graph(sorted(dist.expand().tolist(), reverse=True))
        assert sorted(d for _, d in theirs.degree()) == sorted(
            ours.degree_sequence().tolist()
        )
