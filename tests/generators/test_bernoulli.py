"""Tests for the Bernoulli Chung-Lu model (O(n²) edgeskip baseline)."""

import numpy as np
import pytest

from repro.generators.bernoulli import (
    bernoulli_chung_lu,
    bernoulli_naive,
    chung_lu_probabilities,
)
from repro.graph.degree import DegreeDistribution
from repro.parallel.runtime import ParallelConfig


class TestChungLuProbabilities:
    def test_formula(self, small_dist):
        P = chung_lu_probabilities(small_dist, clip=False)
        two_m = small_dist.stub_count()
        d = small_dist.degrees
        np.testing.assert_allclose(P, np.outer(d, d) / two_m)

    def test_clip(self, skewed_dist):
        raw = chung_lu_probabilities(skewed_dist, clip=False)
        clipped = chung_lu_probabilities(skewed_dist, clip=True)
        assert raw.max() > 1.0  # skewed: the closed form overflows
        assert clipped.max() <= 1.0

    def test_symmetric(self, skewed_dist):
        P = chung_lu_probabilities(skewed_dist)
        np.testing.assert_allclose(P, P.T)

    def test_empty(self):
        P = chung_lu_probabilities(DegreeDistribution([], []))
        assert P.shape == (0, 0)


class TestBernoulliChungLu:
    def test_always_simple(self, skewed_dist, cfg):
        assert bernoulli_chung_lu(skewed_dist, cfg).is_simple()

    def test_underproduces_hub_on_skew(self):
        """Capped probabilities lose hub mass (Figure 3's dmax error)."""
        from repro.datasets.synthetic import deterministic_powerlaw

        dist = deterministic_powerlaw(n=600, d_avg=4.0, d_max=200, n_classes=16)
        hubs = [
            bernoulli_chung_lu(dist, ParallelConfig(seed=s)).degree_sequence().max()
            for s in range(10)
        ]
        sizes = [
            bernoulli_chung_lu(dist, ParallelConfig(seed=100 + s)).m for s in range(10)
        ]
        assert np.mean(hubs) < 0.9 * dist.d_max
        assert np.mean(sizes) < dist.m

    def test_matches_naive_distribution(self):
        """Edge-skipping equals explicit per-pair coin flips."""
        dist = DegreeDistribution([1, 2, 3], [8, 5, 2])
        skip_sizes = [
            bernoulli_chung_lu(dist, ParallelConfig(seed=s)).m for s in range(300)
        ]
        naive_sizes = [bernoulli_naive(dist, seed).m for seed in range(300)]
        # two-sample t-test-ish: means within joint std error
        se = np.sqrt(np.var(skip_sizes) / 300 + np.var(naive_sizes) / 300)
        assert abs(np.mean(skip_sizes) - np.mean(naive_sizes)) < 5 * se + 1e-9

    def test_unskewed_degrees_match(self):
        """On a mild distribution CL probabilities are honest and the
        Bernoulli model matches degrees in expectation."""
        from repro.graph.stats import vertex_classes

        dist = DegreeDistribution([2, 3, 4], [20, 10, 10])
        cls = vertex_classes(dist)
        acc = np.zeros(dist.n_classes)
        runs = 40
        for s in range(runs):
            deg = bernoulli_chung_lu(dist, ParallelConfig(seed=s)).degree_sequence()
            acc += np.bincount(cls, weights=deg, minlength=dist.n_classes)
        mean_deg = acc / (runs * dist.counts)
        rel = np.abs(mean_deg - dist.degrees) / dist.degrees
        assert rel.mean() < 0.08


class TestBernoulliNaive:
    def test_simple(self, small_dist):
        assert bernoulli_naive(small_dist, 0).is_simple()

    def test_reproducible(self, small_dist):
        a = bernoulli_naive(small_dist, 7)
        b = bernoulli_naive(small_dist, 7)
        assert a.same_graph(b)
