"""Tests for the O(m) Chung-Lu model and the erased variant."""

import numpy as np
import pytest

from repro.generators.chung_lu import chung_lu_om, erased_chung_lu
from repro.graph.degree import DegreeDistribution
from repro.parallel.runtime import ParallelConfig


class TestChungLuOm:
    def test_edge_count_exact(self, skewed_dist, cfg):
        g = chung_lu_om(skewed_dist, cfg)
        assert g.m == skewed_dist.m
        assert g.n == skewed_dist.n

    def test_degrees_match_in_expectation(self, skewed_dist):
        from repro.graph.stats import vertex_classes

        cls = vertex_classes(skewed_dist)
        acc = np.zeros(skewed_dist.n_classes)
        runs = 20
        for s in range(runs):
            g = chung_lu_om(skewed_dist, ParallelConfig(seed=s))
            acc += np.bincount(cls, weights=g.degree_sequence(),
                               minlength=skewed_dist.n_classes)
        mean_deg = acc / (runs * skewed_dist.counts)
        rel = np.abs(mean_deg - skewed_dist.degrees) / skewed_dist.degrees
        assert rel.mean() < 0.08

    def test_produces_defects_on_skew(self, skewed_dist, cfg):
        """The whole point of the paper: O(m) is not simple on skew."""
        g = chung_lu_om(skewed_dist, cfg)
        assert g.count_multi_edges() + g.count_self_loops() > 0

    def test_reproducible(self, skewed_dist):
        a = chung_lu_om(skewed_dist, ParallelConfig(seed=4))
        b = chung_lu_om(skewed_dist, ParallelConfig(seed=4))
        np.testing.assert_array_equal(a.u, b.u)

    def test_alias_sampler_variant(self, skewed_dist, cfg):
        g = chung_lu_om(skewed_dist, cfg, sampler="alias")
        assert g.m == skewed_dist.m

    def test_process_backend(self, small_dist):
        cfg = ParallelConfig(threads=2, backend="process", seed=1)
        g = chung_lu_om(small_dist, cfg)
        assert g.m == small_dist.m

    def test_process_backend_matches_vectorized(self, small_dist):
        vec = chung_lu_om(small_dist, ParallelConfig(threads=2, backend="vectorized", seed=1))
        prc = chung_lu_om(small_dist, ParallelConfig(threads=2, backend="process", seed=1))
        np.testing.assert_array_equal(vec.u, prc.u)
        np.testing.assert_array_equal(vec.v, prc.v)

    def test_cost_accounting(self, small_dist, cfg):
        from repro.parallel.cost_model import CostModel

        cost = CostModel()
        chung_lu_om(small_dist, cfg, cost=cost)
        # binary-search sampling costs O(m log n)
        assert cost.phase("draws").work == pytest.approx(
            small_dist.stub_count() * np.log2(small_dist.n)
        )


class TestErasedChungLu:
    def test_always_simple(self, skewed_dist, cfg):
        assert erased_chung_lu(skewed_dist, cfg).is_simple()

    def test_fewer_edges_than_target_on_skew(self, skewed_dist, cfg):
        """Erasure systematically deletes edges (Figure 2's deficit)."""
        g = erased_chung_lu(skewed_dist, cfg)
        assert g.m < skewed_dist.m

    def test_max_degree_underproduced(self, skewed_dist):
        """The hub loses the most mass to multi-edge erasure."""
        maxes = [
            erased_chung_lu(skewed_dist, ParallelConfig(seed=s)).degree_sequence().max()
            for s in range(10)
        ]
        assert np.mean(maxes) < skewed_dist.d_max
