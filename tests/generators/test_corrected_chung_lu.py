"""Tests for weight-corrected Chung-Lu (Winlaw et al. [36] style)."""

import numpy as np
import pytest

from repro.datasets.synthetic import deterministic_powerlaw
from repro.generators.corrected_chung_lu import (
    corrected_bernoulli_chung_lu,
    corrected_probability_matrix,
    corrected_weights,
)
from repro.graph.degree import DegreeDistribution
from repro.parallel.runtime import ParallelConfig


@pytest.fixture(scope="module")
def skewed():
    return deterministic_powerlaw(600, 4.0, 100, 15)


class TestCorrectedWeights:
    @pytest.mark.parametrize("model", ["chung_lu", "grg"])
    def test_converges_on_mild(self, model):
        dist = DegreeDistribution([2, 3, 4], [30, 20, 10])
        res = corrected_weights(dist, model=model)
        assert res.converged
        assert res.max_error < 1e-8

    @pytest.mark.parametrize("model", ["chung_lu", "grg"])
    def test_converges_on_skewed_but_slowly(self, skewed, model):
        """Expected degrees become matchable — at many fixed-point sweeps
        (each O(|D|²)), versus the heuristic's single pass."""
        res = corrected_weights(skewed, model=model)
        assert res.converged
        assert res.iterations > 10

    def test_probabilities_valid(self, skewed):
        for model in ("chung_lu", "grg"):
            res = corrected_weights(skewed, model=model)
            P = corrected_probability_matrix(res)
            assert (P >= 0).all() and (P <= 1).all()
            np.testing.assert_allclose(P, P.T)

    def test_naive_weights_do_not_match(self, skewed):
        """Without correction (iteration 0 ≡ plain CL) the expected
        degrees are off — the reason corrections exist."""
        res = corrected_weights(skewed, max_iterations=1)
        assert not res.converged
        assert res.max_error > 0.01

    def test_unknown_model(self, skewed):
        with pytest.raises(ValueError):
            corrected_weights(skewed, model="exotic")

    def test_bad_damping(self, skewed):
        with pytest.raises(ValueError):
            corrected_weights(skewed, damping=0.0)

    def test_empty(self):
        res = corrected_weights(DegreeDistribution([], []))
        assert res.converged


class TestCorrectedGenerator:
    def test_output_simple(self, skewed):
        g, res = corrected_bernoulli_chung_lu(skewed, ParallelConfig(seed=1))
        assert g.is_simple()
        assert res.converged

    def test_better_degree_match_than_naive(self, skewed):
        """Corrected weights beat naive capped CL on realized edge count."""
        from repro.generators.bernoulli import bernoulli_chung_lu

        corrected_sizes = []
        naive_sizes = []
        for s in range(6):
            g, _ = corrected_bernoulli_chung_lu(skewed, ParallelConfig(seed=s))
            corrected_sizes.append(g.m)
            naive_sizes.append(bernoulli_chung_lu(skewed, ParallelConfig(seed=s)).m)
        corrected_err = abs(np.mean(corrected_sizes) - skewed.m)
        naive_err = abs(np.mean(naive_sizes) - skewed.m)
        assert corrected_err < naive_err

    def test_attachment_bias_persists(self, skewed):
        """The paper's point: even degree-perfect corrected weights leave
        the pairwise attachment structure biased vs the uniform sample —
        the rank-one family cannot express it."""
        from repro.bench.harness import uniform_reference
        from repro.core.mixing import l1_probability_error
        from repro.graph.stats import attachment_probability_matrix

        cfg = ParallelConfig(seed=3)
        base = np.zeros((skewed.n_classes, skewed.n_classes))
        samples = 4
        for s in range(samples):
            ref = uniform_reference(skewed, cfg.with_seed(10 + s), swap_iterations=12)
            base += attachment_probability_matrix(ref, skewed)
        base /= samples

        res = corrected_weights(skewed)
        corrected_P = corrected_probability_matrix(res)
        bias = l1_probability_error(corrected_P, base)
        # the corrected closed form stays measurably off the uniform matrix
        assert bias > 0.05
