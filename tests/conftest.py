"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro import DegreeDistribution, EdgeList, ParallelConfig


@pytest.fixture
def cfg() -> ParallelConfig:
    """Default vectorized configuration with a fixed seed."""
    return ParallelConfig(threads=4, backend="vectorized", seed=123)


@pytest.fixture
def serial_cfg() -> ParallelConfig:
    """Serial reference configuration with the same seed."""
    return ParallelConfig(threads=1, backend="serial", seed=123)


@pytest.fixture
def small_dist() -> DegreeDistribution:
    """A tiny skewed distribution (graphical)."""
    return DegreeDistribution(degrees=[1, 2, 3, 6], counts=[6, 4, 2, 1])


@pytest.fixture
def skewed_dist() -> DegreeDistribution:
    """A mid-sized skewed power-law-like distribution."""
    from repro.datasets.synthetic import deterministic_powerlaw

    return deterministic_powerlaw(n=500, d_avg=4.0, d_max=60, n_classes=20)


@pytest.fixture
def ring_graph() -> EdgeList:
    """A 10-cycle: simple, 2-regular."""
    n = 10
    u = np.arange(n)
    return EdgeList(u, (u + 1) % n, n)
