"""Failure-injection and hardening tests.

Exercises the error paths a long-running generation service would hit:
capacity exhaustion, malformed inputs, degenerate sizes, kernels that
raise mid-flight.
"""

import numpy as np
import pytest

from repro import DegreeDistribution, EdgeList, ParallelConfig, swap_edges
from repro.parallel.hashtable import ConcurrentEdgeHashTable


class TestHashTableExhaustion:
    def test_vectorized_overflow_raises(self):
        table = ConcurrentEdgeHashTable(0)  # 16 slots minimum
        keys = np.arange(17, dtype=np.int64) * 7919
        with pytest.raises(RuntimeError, match="full"):
            table.test_and_set(keys)

    def test_serial_overflow_raises(self):
        table = ConcurrentEdgeHashTable(0)
        with pytest.raises(RuntimeError, match="full"):
            table.test_and_set_serial(np.arange(17, dtype=np.int64) * 7919)

    def test_exactly_full_is_fine(self):
        table = ConcurrentEdgeHashTable(0)
        keys = np.arange(16, dtype=np.int64) * 104729
        assert not table.test_and_set(keys).any()
        assert table.size == 16

    def test_table_usable_after_clear_following_overflow(self):
        table = ConcurrentEdgeHashTable(0)
        with pytest.raises(RuntimeError):
            table.test_and_set(np.arange(20, dtype=np.int64) * 31)
        table.clear()
        assert not table.test_and_set(np.asarray([5], dtype=np.int64))[0]


class TestDegenerateGraphs:
    def test_swap_odd_edge_count_leaves_unpaired_edge(self):
        # 3 edges -> one pair + one unpaired; degrees must still hold
        g = EdgeList([0, 2, 4], [1, 3, 5], n=6)
        out = swap_edges(g, 5, ParallelConfig(seed=1))
        np.testing.assert_array_equal(
            np.sort(out.degree_sequence()), np.sort(g.degree_sequence())
        )
        assert out.m == 3

    def test_all_self_loops_input(self):
        g = EdgeList([0, 1, 2, 3], [0, 1, 2, 3], n=4)
        out = swap_edges(g, 10, ParallelConfig(seed=2))
        # loops pair with loops: {u,u},{x,x} -> {u,x},{u,x}: duplicate ->
        # rejected; loops are only destroyed via mixed pairs, which do
        # not exist here. Degrees must be preserved regardless.
        np.testing.assert_array_equal(out.degree_sequence(), g.degree_sequence())

    def test_complete_graph_is_frozen(self):
        """K_n admits no swap: every proposal duplicates an edge."""
        iu, iv = np.triu_indices(5, k=1)
        g = EdgeList(iu, iv)
        from repro.core.swap import SwapStats

        stats = SwapStats()
        out = swap_edges(g, 5, ParallelConfig(seed=3), stats=stats)
        assert out.same_graph(g)
        assert stats.accepted == 0

    def test_two_parallel_stars_minimal_motion(self):
        # extreme skew: two hubs sharing all leaves
        hub_edges_u = np.concatenate([np.zeros(8, np.int64), np.ones(8, np.int64)])
        hub_edges_v = np.concatenate([np.arange(2, 10), np.arange(2, 10)])
        g = EdgeList(hub_edges_u, hub_edges_v)
        out = swap_edges(g, 10, ParallelConfig(seed=4))
        assert out.is_simple()
        np.testing.assert_array_equal(
            np.sort(out.degree_sequence()), np.sort(g.degree_sequence())
        )


class TestMalformedInputs:
    def test_nan_probabilities_rejected(self, small_dist):
        from repro.core.edge_skip import generate_edges

        P = np.full((4, 4), np.nan)
        with pytest.raises(ValueError):
            generate_edges(P, small_dist, ParallelConfig(seed=0))

    def test_vertex_id_over_32_bits(self):
        g = EdgeList([2**32], [0])
        with pytest.raises(ValueError, match="32 bits"):
            g.keys()

    def test_distribution_count_overflow_guard(self):
        # absurd counts must not silently wrap
        d = DegreeDistribution([2], [2**40])
        assert d.n == 2**40  # int64 arithmetic holds

    def test_empty_distribution_through_pipeline(self):
        from repro import generate_graph

        d = DegreeDistribution([], [])
        g, report = generate_graph(d, swap_iterations=2, config=ParallelConfig(seed=5))
        assert g.m == 0 and g.n == 0


class TestProcessBackendFailures:
    def test_kernel_exception_propagates(self):
        from repro.parallel.mp_backend import process_chunk_map

        cfg = ParallelConfig(threads=2, backend="process", seed=0)
        with pytest.raises(Exception):
            process_chunk_map(_raising_kernel, 10, cfg)

    def test_swap_degrades_when_shared_memory_unavailable(self, monkeypatch):
        from repro.core.swap import SwapStats
        from repro.parallel import shm

        g = EdgeList(np.arange(60), (np.arange(60) + 1) % 60)
        expect = swap_edges(g, 4, ParallelConfig(seed=9, backend="vectorized"))

        monkeypatch.setattr(shm, "HAVE_SHM", False)
        stats = SwapStats()
        out = swap_edges(
            g, 4, ParallelConfig(seed=9, threads=2, backend="process"), stats=stats
        )
        np.testing.assert_array_equal(out.u, expect.u)
        np.testing.assert_array_equal(out.v, expect.v)
        assert stats.degraded
        assert [f.kind for f in stats.faults] == ["unavailable"]

    def test_generation_degrades_when_shared_memory_unavailable(self, monkeypatch):
        from repro import generate_graph
        from repro.parallel import shm

        d = DegreeDistribution([1, 2, 4], [30, 14, 6])
        cfg = dict(seed=13, threads=2, processes=2, backend="process")
        expect, base = generate_graph(
            d, swap_iterations=3, config=ParallelConfig(**cfg)
        )
        assert base.fused and not base.degraded

        monkeypatch.setattr(shm, "HAVE_SHM", False)
        out, report = generate_graph(
            d, swap_iterations=3, config=ParallelConfig(**cfg)
        )
        np.testing.assert_array_equal(out.u, expect.u)
        np.testing.assert_array_equal(out.v, expect.v)
        assert report.degraded and not report.fused
        assert [f.kind for f in report.faults] == ["unavailable", "unavailable"]


def _raising_kernel(lo, hi, seed):
    raise RuntimeError("injected failure")
